"""Adjacency-set undirected graph used for the PC-stable skeleton phase.

The skeleton phase only needs membership tests, neighbour enumeration and
edge deletion, all O(1)/O(deg); adjacency sets give exactly that.  Per-depth
*snapshots* of the adjacency structure provide PC-stable's order-independence
guarantee (conditioning sets are always drawn from the frozen snapshot, never
from the mutating graph).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

__all__ = ["UndirectedGraph"]


class UndirectedGraph:
    """Mutable undirected graph on nodes ``0..n-1``."""

    __slots__ = ("_adj", "_n_edges")

    def __init__(self, n_nodes: int) -> None:
        if n_nodes < 0:
            raise ValueError("n_nodes must be >= 0")
        self._adj: list[set[int]] = [set() for _ in range(n_nodes)]
        self._n_edges = 0

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def complete(cls, n_nodes: int) -> "UndirectedGraph":
        """The complete graph PC-stable starts from (Algorithm 1, line 3)."""
        g = cls(n_nodes)
        full = set(range(n_nodes))
        for i in range(n_nodes):
            g._adj[i] = full - {i}
        g._n_edges = n_nodes * (n_nodes - 1) // 2
        return g

    @classmethod
    def from_edges(cls, n_nodes: int, edges: Iterable[tuple[int, int]]) -> "UndirectedGraph":
        g = cls(n_nodes)
        for u, v in edges:
            g.add_edge(u, v)
        return g

    def copy(self) -> "UndirectedGraph":
        g = UndirectedGraph(self.n_nodes)
        g._adj = [set(s) for s in self._adj]
        g._n_edges = self._n_edges
        return g

    # ------------------------------------------------------------------ #
    # basic operations
    # ------------------------------------------------------------------ #
    @property
    def n_nodes(self) -> int:
        return len(self._adj)

    @property
    def n_edges(self) -> int:
        return self._n_edges

    def has_edge(self, u: int, v: int) -> bool:
        return v in self._adj[u]

    def add_edge(self, u: int, v: int) -> None:
        if u == v:
            raise ValueError("self-loops are not allowed")
        if v not in self._adj[u]:
            self._adj[u].add(v)
            self._adj[v].add(u)
            self._n_edges += 1

    def remove_edge(self, u: int, v: int) -> None:
        if v not in self._adj[u]:
            raise KeyError(f"edge ({u}, {v}) not in graph")
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._n_edges -= 1

    def neighbors(self, u: int) -> set[int]:
        """Live adjacency set (mutates with the graph) — callers needing the
        PC-stable snapshot semantics must copy (see :meth:`adjacency_snapshot`)."""
        return self._adj[u]

    def degree(self, u: int) -> int:
        return len(self._adj[u])

    def edges(self) -> Iterator[tuple[int, int]]:
        """Edges as ordered pairs ``(u, v)`` with ``u < v``."""
        for u in range(self.n_nodes):
            for v in self._adj[u]:
                if u < v:
                    yield (u, v)

    def adjacency_snapshot(self) -> list[frozenset[int]]:
        """Frozen copy of every adjacency set (Algorithm 1, lines 6-8)."""
        return [frozenset(s) for s in self._adj]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UndirectedGraph):
            return NotImplemented
        return self._adj == other._adj

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("UndirectedGraph is mutable and unhashable")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UndirectedGraph(n_nodes={self.n_nodes}, n_edges={self.n_edges})"
