"""d-separation via the reachable-trail (Bayes-ball) algorithm.

Used by the oracle CI test (:mod:`repro.citests.oracle`), which makes the
whole PC-stable pipeline testable against exact graph-theoretic ground
truth: with a d-separation oracle in place of statistical tests, PC-stable
must recover the true CPDAG exactly.

Implementation follows Koller & Friedman, *Probabilistic Graphical Models*,
Algorithm 3.1 (``Reachable``): breadth-first search over ``(node,
direction)`` states, where a collider is traversable iff the node is in
``Z`` or has a descendant in ``Z``.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Sequence

from .dag import build_children, build_parents

__all__ = ["d_separated", "DSeparationOracle"]


def _ancestors_of(nodes: Iterable[int], parents: list[set[int]]) -> set[int]:
    """``nodes`` together with all their ancestors."""
    out: set[int] = set()
    stack = list(nodes)
    while stack:
        u = stack.pop()
        if u in out:
            continue
        out.add(u)
        stack.extend(parents[u])
    return out


def d_separated(
    n_nodes: int,
    edges: Sequence[tuple[int, int]],
    x: int,
    y: int,
    z: Iterable[int],
) -> bool:
    """True iff ``x`` and ``y`` are d-separated given ``z`` in the DAG."""
    parents = build_parents(n_nodes, edges)
    children = build_children(n_nodes, edges)
    return _d_separated_prepared(parents, children, x, y, z)


def _d_separated_prepared(
    parents: list[set[int]],
    children: list[set[int]],
    x: int,
    y: int,
    z: Iterable[int],
) -> bool:
    zset = set(int(v) for v in z)
    if x == y:
        raise ValueError("x and y must differ")
    if x in zset or y in zset:
        raise ValueError("x and y must not be in the conditioning set")

    # A node opens a collider iff it is in Z or has a descendant in Z,
    # i.e. iff it belongs to Z union ancestors(Z).
    collider_open = _ancestors_of(zset, parents)

    # State (node, direction): direction "up" means the trail arrives at the
    # node from one of its children (moving towards parents), "down" means it
    # arrives from a parent (moving towards children).
    UP, DOWN = 0, 1
    queue: deque[tuple[int, int]] = deque([(x, UP)])
    visited: set[tuple[int, int]] = set()
    while queue:
        node, direction = queue.popleft()
        if (node, direction) in visited:
            continue
        visited.add((node, direction))
        if node == y:
            return False
        if direction == UP:
            if node not in zset:
                for p in parents[node]:
                    queue.append((p, UP))
                for c in children[node]:
                    queue.append((c, DOWN))
        else:  # DOWN: arrived from a parent
            if node not in zset:
                for c in children[node]:
                    queue.append((c, DOWN))
            if node in collider_open:
                for p in parents[node]:
                    queue.append((p, UP))
    return True


class DSeparationOracle:
    """Reusable d-separation queries against a fixed DAG.

    Precomputes parent/child sets once; each query is then a single
    Bayes-ball BFS.
    """

    def __init__(self, n_nodes: int, edges: Sequence[tuple[int, int]]) -> None:
        self._parents = build_parents(n_nodes, edges)
        self._children = build_children(n_nodes, edges)
        self._n_nodes = n_nodes

    @property
    def n_nodes(self) -> int:
        return self._n_nodes

    def query(self, x: int, y: int, z: Iterable[int]) -> bool:
        """True iff ``x ⟂ y | z`` in the DAG."""
        return _d_separated_prepared(self._parents, self._children, x, y, z)
