"""Partially directed acyclic graphs (PDAGs) and CPDAG utilities.

Steps 2 and 3 of PC-stable operate on a PDAG: the skeleton's edges are
progressively oriented (v-structures, then Meek rules) until the graph is a
CPDAG — the canonical representative of the Markov equivalence class.

Representation: two edge kinds over nodes ``0..n-1``:

* undirected ``u - v`` (stored symmetrically), and
* directed ``u -> v``.

At most one kind may connect a pair.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

__all__ = ["PDAG"]


class PDAG:
    """Mixed graph with undirected and directed edges."""

    __slots__ = ("_und", "_out", "_in")

    def __init__(self, n_nodes: int) -> None:
        if n_nodes < 0:
            raise ValueError("n_nodes must be >= 0")
        self._und: list[set[int]] = [set() for _ in range(n_nodes)]
        self._out: list[set[int]] = [set() for _ in range(n_nodes)]
        self._in: list[set[int]] = [set() for _ in range(n_nodes)]

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_skeleton(cls, skeleton) -> "PDAG":
        """All-undirected PDAG from an :class:`UndirectedGraph`."""
        g = cls(skeleton.n_nodes)
        for u, v in skeleton.edges():
            g.add_undirected(u, v)
        return g

    @classmethod
    def from_dag_edges(cls, n_nodes: int, edges: Iterable[tuple[int, int]]) -> "PDAG":
        g = cls(n_nodes)
        for u, v in edges:
            g.add_directed(u, v)
        return g

    def copy(self) -> "PDAG":
        g = PDAG(self.n_nodes)
        g._und = [set(s) for s in self._und]
        g._out = [set(s) for s in self._out]
        g._in = [set(s) for s in self._in]
        return g

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def add_undirected(self, u: int, v: int) -> None:
        self._check_pair(u, v)
        if self.adjacent(u, v):
            raise ValueError(f"nodes {u}, {v} already connected")
        self._und[u].add(v)
        self._und[v].add(u)

    def add_directed(self, u: int, v: int) -> None:
        self._check_pair(u, v)
        if self.adjacent(u, v):
            raise ValueError(f"nodes {u}, {v} already connected")
        self._out[u].add(v)
        self._in[v].add(u)

    def orient(self, u: int, v: int) -> None:
        """Turn the undirected edge ``u - v`` into ``u -> v``."""
        if v not in self._und[u]:
            raise ValueError(f"no undirected edge between {u} and {v}")
        self._und[u].discard(v)
        self._und[v].discard(u)
        self._out[u].add(v)
        self._in[v].add(u)

    def remove_any_edge(self, u: int, v: int) -> None:
        if v in self._und[u]:
            self._und[u].discard(v)
            self._und[v].discard(u)
        elif v in self._out[u]:
            self._out[u].discard(v)
            self._in[v].discard(u)
        elif u in self._out[v]:
            self._out[v].discard(u)
            self._in[u].discard(v)
        else:
            raise KeyError(f"no edge between {u} and {v}")

    def _check_pair(self, u: int, v: int) -> None:
        n = self.n_nodes
        if not (0 <= u < n and 0 <= v < n):
            raise ValueError(f"node out of range: ({u}, {v})")
        if u == v:
            raise ValueError("self-loops are not allowed")

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def n_nodes(self) -> int:
        return len(self._und)

    def adjacent(self, u: int, v: int) -> bool:
        return v in self._und[u] or v in self._out[u] or u in self._out[v]

    def has_undirected(self, u: int, v: int) -> bool:
        return v in self._und[u]

    def has_directed(self, u: int, v: int) -> bool:
        return v in self._out[u]

    def undirected_neighbors(self, u: int) -> set[int]:
        return self._und[u]

    def parents(self, u: int) -> set[int]:
        return self._in[u]

    def children(self, u: int) -> set[int]:
        return self._out[u]

    def adjacencies(self, u: int) -> set[int]:
        return self._und[u] | self._out[u] | self._in[u]

    def undirected_edges(self) -> Iterator[tuple[int, int]]:
        for u in range(self.n_nodes):
            for v in self._und[u]:
                if u < v:
                    yield (u, v)

    def directed_edges(self) -> Iterator[tuple[int, int]]:
        for u in range(self.n_nodes):
            for v in self._out[u]:
                yield (u, v)

    @property
    def n_undirected(self) -> int:
        return sum(len(s) for s in self._und) // 2

    @property
    def n_directed(self) -> int:
        return sum(len(s) for s in self._out)

    def skeleton_edges(self) -> set[tuple[int, int]]:
        """Unordered adjacencies as sorted pairs."""
        out: set[tuple[int, int]] = set()
        for u, v in self.undirected_edges():
            out.add((u, v))
        for u, v in self.directed_edges():
            out.add((min(u, v), max(u, v)))
        return out

    def is_dag(self) -> bool:
        """True when there are no undirected edges and no directed cycle."""
        if self.n_undirected:
            return False
        return not self._has_directed_cycle()

    def _has_directed_cycle(self) -> bool:
        n = self.n_nodes
        indeg = [len(self._in[i]) for i in range(n)]
        stack = [i for i in range(n) if indeg[i] == 0]
        seen = 0
        while stack:
            u = stack.pop()
            seen += 1
            for v in self._out[u]:
                indeg[v] -= 1
                if indeg[v] == 0:
                    stack.append(v)
        return seen != n

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PDAG):
            return NotImplemented
        return self._und == other._und and self._out == other._out

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("PDAG is mutable and unhashable")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PDAG(n_nodes={self.n_nodes}, undirected={self.n_undirected}, "
            f"directed={self.n_directed})"
        )
