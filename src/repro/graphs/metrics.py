"""Structure-recovery metrics.

The paper reports no accuracy tables (Fast-BNS computes the *same* output as
PC-stable; Sec. V-A), but the reproduction needs accuracy instrumentation to
demonstrate that all implementations agree and that learning behaves sanely
as sample size grows.  Provided metrics:

* skeleton precision / recall / F1 against the true skeleton,
* arrowhead precision / recall against the true CPDAG,
* structural Hamming distance (SHD) between PDAGs.
"""

from __future__ import annotations

from dataclasses import dataclass

from .pdag import PDAG

__all__ = ["SkeletonMetrics", "skeleton_metrics", "shd", "arrowhead_metrics", "ArrowMetrics"]


@dataclass(frozen=True)
class SkeletonMetrics:
    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 1.0

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def _normalise_edge_set(edges) -> set[tuple[int, int]]:
    return {(min(u, v), max(u, v)) for u, v in edges}


def skeleton_metrics(learned_edges, true_edges) -> SkeletonMetrics:
    """Compare unordered adjacency sets (edges as any iterable of pairs)."""
    learned = _normalise_edge_set(learned_edges)
    truth = _normalise_edge_set(true_edges)
    tp = len(learned & truth)
    return SkeletonMetrics(
        true_positives=tp,
        false_positives=len(learned) - tp,
        false_negatives=len(truth) - tp,
    )


@dataclass(frozen=True)
class ArrowMetrics:
    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 1.0

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 1.0


def arrowhead_metrics(learned: PDAG, truth: PDAG) -> ArrowMetrics:
    """Directed-edge agreement between two PDAGs (typically CPDAGs)."""
    learned_arrows = set(learned.directed_edges())
    true_arrows = set(truth.directed_edges())
    tp = len(learned_arrows & true_arrows)
    return ArrowMetrics(
        true_positives=tp,
        false_positives=len(learned_arrows) - tp,
        false_negatives=len(true_arrows) - tp,
    )


def shd(learned: PDAG, truth: PDAG) -> int:
    """Structural Hamming distance between two PDAGs.

    Counts one unit for every pair of nodes whose connection differs:
    missing edge, extra edge, undirected vs directed, or directed the wrong
    way.
    """
    if learned.n_nodes != truth.n_nodes:
        raise ValueError("PDAGs must have the same node count")
    n = learned.n_nodes

    def kind(g: PDAG, u: int, v: int) -> str:
        if g.has_undirected(u, v):
            return "und"
        if g.has_directed(u, v):
            return "fwd"
        if g.has_directed(v, u):
            return "bwd"
        return "none"

    distance = 0
    for u in range(n):
        for v in range(u + 1, n):
            if kind(learned, u, v) != kind(truth, u, v):
                distance += 1
    return distance
