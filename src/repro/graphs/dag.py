"""Directed-acyclic-graph helpers shared by oracle tests, metrics and the
CPDAG computation."""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = [
    "build_children",
    "build_parents",
    "topological_order",
    "is_acyclic",
    "v_structures_of_dag",
    "dag_to_cpdag",
]


def build_parents(n_nodes: int, edges: Iterable[tuple[int, int]]) -> list[set[int]]:
    parents: list[set[int]] = [set() for _ in range(n_nodes)]
    for u, v in edges:
        parents[v].add(u)
    return parents


def build_children(n_nodes: int, edges: Iterable[tuple[int, int]]) -> list[set[int]]:
    children: list[set[int]] = [set() for _ in range(n_nodes)]
    for u, v in edges:
        children[u].add(v)
    return children


def topological_order(n_nodes: int, edges: Sequence[tuple[int, int]]) -> list[int]:
    """Kahn's algorithm; raises ``ValueError`` on a cycle."""
    parents = build_parents(n_nodes, edges)
    children = build_children(n_nodes, edges)
    indeg = [len(parents[i]) for i in range(n_nodes)]
    stack = [i for i in range(n_nodes) if indeg[i] == 0]
    order: list[int] = []
    while stack:
        u = stack.pop()
        order.append(u)
        for v in children[u]:
            indeg[v] -= 1
            if indeg[v] == 0:
                stack.append(v)
    if len(order) != n_nodes:
        raise ValueError("graph contains a directed cycle")
    return order


def is_acyclic(n_nodes: int, edges: Sequence[tuple[int, int]]) -> bool:
    try:
        topological_order(n_nodes, edges)
        return True
    except ValueError:
        return False


def v_structures_of_dag(
    n_nodes: int, edges: Sequence[tuple[int, int]]
) -> set[tuple[int, int, int]]:
    """All v-structures (immoralities) ``(a, c, b)`` meaning ``a -> c <- b``
    with ``a`` and ``b`` non-adjacent; returned with ``a < b``."""
    parents = build_parents(n_nodes, edges)
    adjacent: set[tuple[int, int]] = set()
    for u, v in edges:
        adjacent.add((min(u, v), max(u, v)))
    out: set[tuple[int, int, int]] = set()
    for c in range(n_nodes):
        ps = sorted(parents[c])
        for i in range(len(ps)):
            for j in range(i + 1, len(ps)):
                a, b = ps[i], ps[j]
                if (a, b) not in adjacent:
                    out.add((a, c, b))
    return out


def dag_to_cpdag(n_nodes: int, edges: Sequence[tuple[int, int]]):
    """CPDAG of the Markov equivalence class of a DAG.

    Orients exactly the v-structure arrows, leaves everything else
    undirected, then closes under Meek rules R1-R3 — the textbook
    characterisation of the CPDAG (compelled edges = v-structures plus their
    Meek closure).
    """
    from ..core.orientation import apply_meek_rules
    from .pdag import PDAG

    edges = list(edges)
    if not is_acyclic(n_nodes, edges):
        raise ValueError("input is not a DAG")
    pdag = PDAG(n_nodes)
    vstructs = v_structures_of_dag(n_nodes, edges)
    compelled: set[tuple[int, int]] = set()
    for a, c, b in vstructs:
        compelled.add((a, c))
        compelled.add((b, c))
    for u, v in edges:
        if (u, v) in compelled:
            pdag.add_directed(u, v)
        elif not pdag.adjacent(u, v):
            pdag.add_undirected(u, v)
    apply_meek_rules(pdag)
    return pdag
