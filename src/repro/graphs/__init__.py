"""Graph substrate: undirected graphs, PDAGs, DAG utilities, d-separation,
structure metrics."""

from .dag import (
    dag_to_cpdag,
    is_acyclic,
    topological_order,
    v_structures_of_dag,
)
from .extension import NoConsistentExtensionError, pdag_to_dag
from .metrics import (
    ArrowMetrics,
    SkeletonMetrics,
    arrowhead_metrics,
    shd,
    skeleton_metrics,
)
from .pdag import PDAG
from .separation import DSeparationOracle, d_separated
from .undirected import UndirectedGraph

__all__ = [
    "UndirectedGraph",
    "PDAG",
    "d_separated",
    "DSeparationOracle",
    "dag_to_cpdag",
    "pdag_to_dag",
    "NoConsistentExtensionError",
    "is_acyclic",
    "topological_order",
    "v_structures_of_dag",
    "SkeletonMetrics",
    "ArrowMetrics",
    "skeleton_metrics",
    "arrowhead_metrics",
    "shd",
]
