"""Consistent extension of a PDAG to a DAG (Dor & Tarsi, 1992).

A learned CPDAG represents a Markov equivalence class; downstream uses
(parameter fitting, sampling, inference) need one concrete member.  The
Dor-Tarsi algorithm orients the undirected edges without creating new
v-structures or cycles, when such an extension exists — it always does for
a valid CPDAG.

Algorithm: repeatedly find a node ``x`` that (a) has no outgoing directed
edges, and (b) every undirected neighbour of ``x`` is adjacent to *all* of
``x``'s other neighbours; direct all of ``x``'s undirected edges *into*
``x`` and remove ``x`` from consideration.  Failure to find such a node
means no consistent extension exists.
"""

from __future__ import annotations

from .pdag import PDAG

__all__ = ["pdag_to_dag", "relaxed_extension", "NoConsistentExtensionError"]


class NoConsistentExtensionError(ValueError):
    """The PDAG admits no DAG extension without new v-structures/cycles."""


def pdag_to_dag(pdag: PDAG, strict: bool = True) -> list[tuple[int, int]]:
    """Directed edge list of a consistent DAG extension of ``pdag``.

    The input is not modified.  With ``strict=True`` (default) raises
    :class:`NoConsistentExtensionError` when no extension exists — possible
    for inconsistent PDAGs produced by statistical errors on real data,
    never for a true CPDAG.  With ``strict=False`` such inputs fall back to
    :func:`relaxed_extension`, which always returns *a* DAG over the same
    skeleton (preserving the given arrows where consistent) but may
    introduce v-structures or flip conflicting arrows.
    """
    try:
        return _dor_tarsi(pdag)
    except NoConsistentExtensionError:
        if strict:
            raise
        return relaxed_extension(pdag)


def _dor_tarsi(pdag: PDAG) -> list[tuple[int, int]]:
    work = pdag.copy()
    n = work.n_nodes
    # Orientations chosen for previously removed nodes.
    oriented: list[tuple[int, int]] = list(pdag.directed_edges())
    alive = set(range(n))

    def neighbours(x: int) -> set[int]:
        return work.adjacencies(x) & alive

    while alive:
        progressed = False
        for x in sorted(alive):
            if work.children(x) & alive:
                continue  # condition (a): x must be a sink
            und = work.undirected_neighbors(x) & alive
            others = neighbours(x)
            ok = True
            for y in und:
                # condition (b): y adjacent to every other neighbour of x
                for z in others:
                    if z != y and not work.adjacent(y, z):
                        ok = False
                        break
                if not ok:
                    break
            if not ok:
                continue
            for y in sorted(und):
                oriented.append((y, x))
            alive.discard(x)
            # Remove x's edges from the working graph.
            for y in list(work.undirected_neighbors(x)):
                work.remove_any_edge(x, y)
            for y in list(work.parents(x)):
                work.remove_any_edge(y, x)
            for y in list(work.children(x)):
                work.remove_any_edge(x, y)
            progressed = True
            break
        if not progressed:
            raise NoConsistentExtensionError(
                "PDAG has no consistent DAG extension (inconsistent orientations)"
            )
    return oriented


def relaxed_extension(pdag: PDAG) -> list[tuple[int, int]]:
    """Best-effort DAG over the PDAG's skeleton.

    Builds a node order by repeatedly extracting a sink (a node with no
    directed edge into the remaining set); when none exists (a directed
    cycle from conflicting learned arrows), the node with the fewest
    remaining children is extracted anyway, flipping its outgoing arrows.
    Every skeleton edge is then oriented towards the earlier-extracted
    node, which is acyclic by construction and agrees with every given
    arrow that was not part of a conflict.
    """
    n = pdag.n_nodes
    alive = set(range(n))
    extraction: list[int] = []
    while alive:
        sink = None
        fewest = None
        fewest_count = None
        for x in sorted(alive):
            alive_children = len(pdag.children(x) & alive)
            if alive_children == 0:
                sink = x
                break
            if fewest_count is None or alive_children < fewest_count:
                fewest, fewest_count = x, alive_children
        chosen = sink if sink is not None else fewest
        assert chosen is not None
        extraction.append(chosen)
        alive.discard(chosen)
    position = {node: i for i, node in enumerate(extraction)}
    edges: list[tuple[int, int]] = []
    for u, v in pdag.undirected_edges():
        edges.append((u, v) if position[v] < position[u] else (v, u))
    for u, v in pdag.directed_edges():
        edges.append((u, v) if position[v] < position[u] else (v, u))
    return edges
