"""Socket front end for the multi-dataset engine server.

:class:`EngineTransport` puts :class:`~repro.engine.server.EngineServer`
behind a TCP or Unix-domain socket speaking the exact JSONL protocol of
``fastbns serve``: one request object per line in, one response object
per line out, same order, per connection.  It exists because the stdin
path serves exactly one producer per process — the ROADMAP's heavy
traffic means many concurrent clients against one warm registry of
sessions.

Design
------
* **One acceptor thread, one handler thread per connection.**  Each
  connection runs its own :meth:`EngineServer.serve_iter` generator, so
  a connection gets ordered responses, a bounded in-flight window, and
  concurrent per-session lanes — the streaming dispatch core is the
  multiplexer; the transport only frames bytes.
* **Backpressure end to end.**  The window caps dispatched-but-unwritten
  requests per connection; a client that stops reading stalls its own
  window (the socket send buffer fills, the generator pauses at yield)
  without starving other connections or buffering its stream.
* **Graceful drain.**  :meth:`EngineTransport.shutdown` with
  ``drain=True`` (what the CLI does on SIGINT/SIGTERM) stops accepting,
  half-closes every connection's read side so intake sees EOF, lets
  in-flight lanes finish, flushes their responses, then joins the
  handlers — the run manifest written afterwards accounts for every
  request that made it in.

Exactness is inherited: the transport never inspects payloads, so
responses are byte-identical to the same stream over stdin.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from collections import deque
from collections.abc import Iterator

from .server import DEFAULT_WINDOW, EngineServer, ParseFailure

__all__ = ["EngineTransport", "LineStream", "parse_address"]


def parse_address(spec) -> tuple[str, object]:
    """Resolve a listen/connect spec to ``(family, address)``.

    Accepts ``HOST:PORT`` (TCP; an empty host means all interfaces for
    servers and localhost for clients), ``unix:PATH`` (Unix-domain
    socket), or an already-split ``(host, port)`` tuple.  Returns
    ``("tcp", (host, port))`` or ``("unix", path)``.
    """
    if isinstance(spec, tuple):
        host, port = spec
        return "tcp", (str(host), int(port))
    if not isinstance(spec, str) or not spec:
        raise ValueError(f"address must be 'HOST:PORT' or 'unix:PATH', got {spec!r}")
    if spec.startswith("unix:"):
        path = spec[len("unix:"):]
        if not path:
            raise ValueError("unix address needs a path, e.g. unix:/tmp/fastbns.sock")
        return "unix", path
    host, sep, port = spec.rpartition(":")
    if not sep:
        raise ValueError(
            f"TCP address must look like HOST:PORT (or unix:PATH), got {spec!r}"
        )
    try:
        return "tcp", (host, int(port))
    except ValueError:
        raise ValueError(f"invalid port in address {spec!r}") from None


def _reclaim_stale_unix_socket(path: str) -> None:
    """Unlink a leftover socket file nobody is listening on.

    A SIGKILLed server never reaches shutdown's ``os.unlink``, and the
    stale path would fail the next bind with ``EADDRINUSE`` until an
    operator removes it by hand.  A live server is detected by probing
    with a connect — only an unconnectable socket file is reclaimed;
    regular files are left alone (bind will fail loudly, as it should).
    """
    import stat

    try:
        if not stat.S_ISSOCK(os.stat(path).st_mode):
            return  # not a socket: let bind fail loudly
    except OSError:
        return  # nothing there
    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    probe.settimeout(0.5)
    try:
        probe.connect(path)
    except OSError:
        try:
            os.unlink(path)
        except OSError:
            pass
        return
    finally:
        probe.close()
    raise OSError(f"unix socket {path} already has a live listener")


class LineStream:
    """Drainable line framing over a socket.

    ``socket.makefile`` cannot be mixed with timeouts, and a blocking
    ``readline`` cannot observe a shutdown request — so intake frames
    lines itself: recv with a short poll timeout, split on newlines, and
    between complete lines check the transport's draining event.  On
    drain the stream ends at the next line boundary (complete lines
    already received are still served; a partial trailing line is
    dropped — it was never fully sent).
    """

    POLL_S = 0.2

    def __init__(self, sock: socket.socket, draining: threading.Event) -> None:
        self._sock = sock
        self._draining = draining
        self._buf = bytearray()
        sock.settimeout(self.POLL_S)

    def lines(self) -> Iterator[str]:
        while True:
            newline = self._buf.find(b"\n")
            if newline >= 0:
                line = self._buf[:newline].decode("utf-8", errors="replace")
                del self._buf[: newline + 1]
                yield line
                continue
            if self._draining.is_set():
                return
            try:
                chunk = self._sock.recv(65536)
            except socket.timeout:
                continue
            except OSError:
                return
            if not chunk:  # client half-closed: natural end of stream
                return
            self._buf += chunk


#: Former private name, kept importable.
_LineStream = LineStream


class _Connection:
    """One client socket: frames lines into a serve_iter stream."""

    def __init__(self, transport: "EngineTransport", sock: socket.socket) -> None:
        self.transport = transport
        self.sock = sock
        self.thread: threading.Thread | None = None
        self.n_responses = 0

    def _requests(self, stream: _LineStream) -> Iterator[object]:
        for line in stream.lines():
            if not line.strip():
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as exc:
                yield ParseFailure(f"invalid JSON: {exc}")

    def run(self) -> None:
        t = self.transport
        stream = LineStream(self.sock, t._draining_conns)
        timings: list[dict] = []
        gen = t.engine.serve_iter(
            self._requests(stream), threads=t.threads, window=t.window, timings=timings
        )
        try:
            for resp in gen:
                self._send((json.dumps(resp) + "\n").encode("utf-8"))
                self.n_responses += 1
        except OSError:
            # Client went away mid-stream (reset, broken pipe).  Closing
            # the generator drains dispatched lanes so the manifest still
            # accounts for them; the responses have nowhere to go.
            pass
        finally:
            gen.close()
            self._close_cleanly()
            t._note_latencies(timings)
            t._connection_done(self)

    #: How long a drain waits for a client that stopped reading before
    #: the connection is dropped (its responses have nowhere to go).
    DRAIN_SEND_GRACE_S = 5.0

    def _send(self, data: bytes) -> None:
        """Blocking send despite the poll timeout on the socket.

        The 0.2 s socket timeout exists for the *reader*; a send that
        trips it just means the client is reading slowly (its receive
        buffer is the final backpressure stage), so retry rather than
        drop the connection — until a shutdown is in progress, at which
        point a client that will not read gets a bounded grace period
        instead of stalling the drain forever.
        """
        view = memoryview(data)
        deadline = None
        while view:
            try:
                sent = self.sock.send(view)
            except socket.timeout:
                if self.transport._stopping.is_set():
                    now = time.monotonic()
                    if deadline is None:
                        deadline = now + self.DRAIN_SEND_GRACE_S
                    elif now >= deadline:
                        raise OSError(
                            "client stopped reading during drain"
                        ) from None
                continue
            view = view[sent:]

    def _close_cleanly(self) -> None:
        """FIN then drain stragglers so the client sees EOF, never RST.

        Closing a socket with unread received bytes sends RST, which
        would turn a graceful drain into a connection error on the
        client.  Half-close the write side (the client's reader gets a
        clean EOF after the last response), then discard whatever the
        client was still sending until it closes or a short deadline
        passes.
        """
        try:
            self.sock.shutdown(socket.SHUT_WR)
            deadline = time.monotonic() + 2.0
            while time.monotonic() < deadline:
                try:
                    if not self.sock.recv(65536):
                        break
                except socket.timeout:
                    continue
                except OSError:
                    break
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass

    def kill(self) -> None:
        """Tear the connection down without draining."""
        try:
            self.sock.close()
        except OSError:
            pass


class EngineTransport:
    """Serve an :class:`EngineServer` over TCP or a Unix-domain socket.

    Parameters
    ----------
    engine:
        The (already configured/registered) server.  The transport does
        not own it — closing the engine is the caller's job, *after*
        :meth:`shutdown`, so drained manifests see live sessions.
    listen:
        ``"HOST:PORT"`` (port 0 picks an ephemeral port — read
        :attr:`address` back), ``"unix:PATH"``, or a ``(host, port)``
        tuple.  ``None`` builds an **adopt-only** transport: no listener
        and no accept thread — connections arrive exclusively through
        :meth:`adopt` (the process plane's fd-passing mode, where the
        router accepts and workers serve).
    threads / window:
        Per-connection dispatch parallelism and in-flight window,
        passed straight to :meth:`EngineServer.serve_iter`.
    reuseport:
        Bind a TCP listener with ``SO_REUSEPORT`` so several processes
        can listen on one port and the kernel load-balances accepts —
        the process plane's fallback when fd passing is not wanted.
    """

    def __init__(
        self,
        engine: EngineServer,
        listen=None,
        *,
        threads: int = 1,
        window: int = DEFAULT_WINDOW,
        backlog: int = 128,
        reuseport: bool = False,
    ) -> None:
        self.engine = engine
        self.threads = max(1, int(threads))
        self.window = max(1, int(window))
        if listen is None:
            self.kind = "adopted"
            self._listener = None
            self._unix_path = None
            self.address: object = None
        else:
            self.kind, addr = parse_address(listen)
            if self.kind == "unix":
                _reclaim_stale_unix_socket(addr)
                self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                self._unix_path = addr
                self._listener.bind(addr)
                self.address = addr
            else:
                self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
                if reuseport:
                    self._listener.setsockopt(
                        socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
                    )
                self._unix_path = None
                host, port = addr
                self._listener.bind((host, port))
                self.address = self._listener.getsockname()[:2]
            self._listener.listen(backlog)
        self._started = False
        self._lock = threading.Lock()
        self._connections: set[_Connection] = set()
        self._accept_thread: threading.Thread | None = None
        self._stopping = threading.Event()
        self._draining_conns = threading.Event()
        self._drained = threading.Event()
        self.n_connections = 0
        self.n_responses = 0
        # Server-side completion latencies (t_done - t_in, seconds) over
        # all finished connections — bounded, most recent samples win.
        self._latencies_s: deque[float] = deque(maxlen=65536)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        if self.kind == "adopted":
            return "adopted"
        if self.kind == "unix":
            return f"unix:{self.address}"
        host, port = self.address
        return f"{host}:{port}"

    def start(self) -> "EngineTransport":
        """Begin accepting connections on a background thread.

        An adopt-only transport (``listen=None``) has nothing to accept;
        ``start`` just arms it for :meth:`adopt`.
        """
        if self._started:
            raise RuntimeError("transport already started")
        self._started = True
        if self._listener is not None:
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="engine-transport-accept", daemon=True
            )
            self._accept_thread.start()
        return self

    def adopt(self, sock: socket.socket) -> None:
        """Serve a connection accepted elsewhere (fd-passed by a router).

        The socket gets the same handler thread, framing, drain and
        accounting as an accepted one — adoption changes who called
        ``accept()``, nothing else.  Raises ``RuntimeError`` (and closes
        the socket) once shutdown has begun, so a racing router cannot
        strand a client on a dying worker silently.
        """
        if not self._spawn_connection(sock):
            sock.close()
            raise RuntimeError("transport is shutting down")

    def _accept_loop(self) -> None:
        # A blocking accept() is not reliably woken by close() from
        # another thread; poll with a short timeout instead so shutdown
        # is observed within one tick.
        try:
            self._listener.settimeout(0.2)
        except OSError:
            return  # shutdown() won the race and already closed it
        while not self._stopping.is_set():
            try:
                sock, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed by shutdown()
            if not self._spawn_connection(sock):
                sock.close()
                break

    def _spawn_connection(self, sock: socket.socket) -> bool:
        """Register ``sock`` and start its handler thread.

        The one path every connection takes, accepted or adopted.
        Returns ``False`` (without closing the socket) when the
        transport is already stopping.
        """
        sock.setblocking(True)
        conn = _Connection(self, sock)
        with self._lock:
            if self._stopping.is_set():
                return False
            self._connections.add(conn)
            self.n_connections += 1
        conn.thread = threading.Thread(
            target=conn.run,
            name="engine-transport-conn",
            daemon=True,
        )
        conn.thread.start()
        return True

    def _connection_done(self, conn: _Connection) -> None:
        with self._lock:
            self._connections.discard(conn)
            self.n_responses += conn.n_responses

    def _note_latencies(self, timings: list[dict]) -> None:
        with self._lock:
            for t in timings:
                self._latencies_s.append(t["t_done"] - t["t_in"])

    def latency_summary(self) -> dict:
        """p50/p95/p99/max/mean (ms) of server-side completion latency
        (intake to worker finish) over finished connections."""
        from .workload import summarize_latencies

        with self._lock:
            samples = list(self._latencies_s)
        return summarize_latencies(samples)

    def wait(self, timeout: float | None = None) -> bool:
        """Block until :meth:`shutdown` completes (signal-interruptible)."""
        deadline = None if timeout is None else (time.monotonic() + timeout)
        while True:
            # Short waits keep the main thread responsive to signals.
            if self._drained.wait(0.2):
                return True
            if deadline is not None and time.monotonic() >= deadline:
                return False

    def shutdown(self, *, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop accepting and wind down; idempotent.

        ``drain=True`` ends every connection's intake at its next line
        boundary (complete lines already received are still served),
        waits for in-flight lanes to finish and their responses to
        flush, then half-closes so clients read a clean EOF.  With
        ``drain=False`` connections are torn down immediately
        (dispatched requests still complete inside their generators'
        close, but responses are dropped).
        """
        self._stopping.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            conns = list(self._connections)
        if drain:
            self._draining_conns.set()
        else:
            for conn in conns:
                conn.kill()
        for conn in conns:
            if conn.thread is not None:
                conn.thread.join(timeout=timeout)
                if conn.thread.is_alive():
                    # Grace expired (client neither reading nor closing):
                    # tear the socket down so the handler unblocks and
                    # its accounting still lands.
                    conn.kill()
                    conn.thread.join(timeout=5.0)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=timeout)
        if self._unix_path is not None:
            try:
                os.unlink(self._unix_path)
            except OSError:
                pass
            self._unix_path = None
        self._drained.set()

    def __enter__(self) -> "EngineTransport":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EngineTransport({self.describe()}, threads={self.threads}, "
            f"window={self.window}, connections={len(self._connections)})"
        )
