"""Multi-dataset engine server: many sessions behind one request stream.

The ROADMAP's north star is heavy traffic from many users, which means
many *datasets* in flight at once — yet everything below this module
manages exactly one: a :class:`~repro.engine.session.LearningSession` owns
one dataset, a :class:`~repro.engine.batch.BatchServer` serves one
session.  :class:`EngineServer` is the missing layer:

* a **registry of dataset sources** (:class:`DatasetSource`: CSV / BIF /
  benchmark network / in-memory), keyed by a client-chosen ``dataset`` id;
* an **LRU-bounded registry of live sessions keyed by dataset content
  fingerprint** — sessions are created on first touch, reused across ids
  that name byte-identical data, and evicted (pool shut down, shm plane
  unlinked, manifest retired) when the session budget is exceeded;
* a **thread-based dispatcher** that runs requests for *different*
  datasets concurrently while serialising per-session access (each
  session owns a process pool and a non-thread-safe tester map);
* a **run manifest spanning all sessions** — one
  :class:`~repro.engine.manifest.RunManifest` per session (live or
  retired) plus an unrouted-error log, with run totals that are the exact
  sum of the parts (:func:`~repro.engine.manifest.merge_totals`).

Protocol
--------
Requests are JSON objects (JSONL over the ``fastbns serve`` CLI).  Query
ops are the :class:`~repro.engine.batch.BatchServer` ones plus a
``dataset`` routing tag::

    {"op": "learn",   "dataset": "icu",  "alpha": 0.01, "gs": "auto"}
    {"op": "blanket", "dataset": "genes", "target": "TP53"}

Admin ops manage the registry in-stream::

    {"op": "register", "dataset": "icu", "source": {"kind": "csv", "path": "icu.csv"}}
    {"op": "close_dataset", "dataset": "icu"}
    {"op": "stats"}

Every response — success, error, admin — carries the same keys
(``op, dataset, fingerprint, cached, elapsed_s, result, error``) with
exactly one of ``result``/``error`` non-``None``; a malformed request
(unknown dataset, bad parameter, unparseable line) yields an ``error``
response and never tears down the stream.

Exactness: routing changes *where* a request runs, never its answer —
responses are byte-identical to a single-dataset ``BatchServer`` over the
same data, which is itself bit-identical to ``learn_structure``
(conf_ipps_JiangWM22's exactness guarantees, preserved through every
serving layer).  Concurrency preserves per-*session* request order (one
dispatch lane per resolved dataset content fingerprint, so ids naming
byte-identical data — which share one session and result cache — also
share one lane); cross-session ordering is unspecified, and admin ops
act as stream barriers.

Streaming: :meth:`EngineServer.serve_iter` is the dispatch core — a
generator that pulls requests lazily under a bounded in-flight window
and yields responses incrementally in input order.  A producer that
pipes requests and waits on each response before sending the next makes
progress (peak buffered requests is the window, never the stream
length), which is what lets the socket transport
(:mod:`repro.engine.transport`) multiplex long-lived connections over
one server.  :meth:`EngineServer.serve` is simply
``list(serve_iter(...))``.

Fairness: with ``threads > 1`` ready lanes are picked by a
deficit-round-robin scheduler
(:class:`~repro.engine.routing.LaneScheduler`) instead of
greedily draining whichever lane got a thread first.  Every lane carries
a weight (default 1.0, configurable per dataset id via ``lane_weights``
/ :meth:`EngineServer.set_lane_weight`); each scheduler visit grants a
lane ``weight`` units of credit and one unit buys one request, so over
any contended interval a backlogged lane's service rate is proportional
to its weight and a zipf-hot dataset cannot starve cold tenants: a
ready lane is served at least once per ring rotation.  Per-lane
serialisation (and therefore sequential-equivalent ordering and cache
accounting) is preserved — a lane is never served by two workers at
once.  Per-lane service counters surface through
:meth:`EngineServer.lane_stats` (configured weights are in
``stats()["dispatch"]["lane_weights"]``).
"""

from __future__ import annotations

import math
import queue
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from collections.abc import Iterable, Iterator, Mapping

from ..datasets.dataset import DiscreteDataset
from .batch import BatchServer, ParseFailure
from .fingerprint import dataset_fingerprint
from .manifest import MANIFEST_VERSION, RunManifest, merge_totals, shutdown_doc
from .routing import LaneScheduler, Pending, lane_label, request_dataset_id
from .session import LearningSession
from .statscache import DEFAULT_BUDGET_BYTES
from .store import EngineStore

__all__ = [
    "DatasetSource",
    "EngineServer",
    "ParseFailure",
    "QUERY_OPS",
    "ADMIN_OPS",
    "DEFAULT_WINDOW",
]

QUERY_OPS = ("learn", "blanket")
ADMIN_OPS = ("register", "close_dataset", "stats", "manifest")

# The scheduling/placement primitives grew out of this module and moved
# to repro.engine.routing so the multi-process plane shares them; the
# private names remain importable from here.
_LaneScheduler = LaneScheduler
_Pending = Pending

#: Default bound on dispatched-but-not-yet-yielded requests in
#: :meth:`EngineServer.serve_iter` — deep enough to keep every lane busy,
#: small enough that a pathological producer cannot buffer a whole stream.
DEFAULT_WINDOW = 64


# --------------------------------------------------------------------- #
# dataset sources
# --------------------------------------------------------------------- #
@dataclass(frozen=True, eq=False)
class DatasetSource:
    """A recipe for (re)materialising one dataset.

    Sessions are disposable under the server's LRU budget, so what the
    registry keeps is not data but a deterministic *source*: evicting a
    session and re-touching its id reloads byte-identical data (CSV/BIF
    files are read as-is; BIF and benchmark sampling is seeded), hence the
    same content fingerprint and the same answers.
    """

    kind: str  # "csv" | "bif" | "network" | "memory"
    path: str | None = None
    name: str | None = None
    samples: int = 5000
    seed: int = 0
    scale: float | None = None
    dataset: DiscreteDataset | None = None  # kind == "memory" only

    def __post_init__(self) -> None:
        if self.kind not in ("csv", "bif", "network", "memory"):
            raise ValueError(f"source kind must be csv/bif/network/memory, got {self.kind!r}")
        if self.kind in ("csv", "bif") and not self.path:
            raise ValueError(f"{self.kind} source needs a 'path'")
        if self.kind == "network" and not self.name:
            raise ValueError("network source needs a 'name'")
        if self.kind == "memory" and self.dataset is None:
            raise ValueError("memory source needs a dataset")
        if int(self.samples) < 1:
            raise ValueError(f"samples must be >= 1, got {self.samples}")
        object.__setattr__(self, "samples", int(self.samples))
        object.__setattr__(self, "seed", int(self.seed))

    @classmethod
    def from_spec(
        cls,
        spec,
        *,
        samples: int = 5000,
        seed: int = 0,
        scale: float | None = None,
    ) -> "DatasetSource":
        """Build a source from a protocol spec.

        Accepts the JSONL mapping form (``{"kind": "csv", "path": ...}``,
        with per-kind fields) or the compact CLI string form
        (``csv:PATH`` / ``bif:PATH`` / ``network:NAME``, taking
        ``samples``/``seed``/``scale`` from the keyword defaults).
        In-memory sources never cross the protocol — register those
        through :meth:`EngineServer.register` directly.
        """
        if isinstance(spec, DatasetSource):
            return spec
        if isinstance(spec, str):
            kind, sep, value = spec.partition(":")
            if not sep or not value:
                raise ValueError(
                    f"source string must look like 'csv:PATH', 'bif:PATH' or "
                    f"'network:NAME', got {spec!r}"
                )
            if kind in ("csv", "bif"):
                return cls(kind=kind, path=value, samples=samples, seed=seed)
            if kind == "network":
                return cls(kind="network", name=value, samples=samples, scale=scale)
            raise ValueError(f"unknown source kind {kind!r} in {spec!r}")
        if isinstance(spec, Mapping):
            d = dict(spec)
            kind = d.pop("kind", None)
            if kind == "memory":
                raise ValueError(
                    "memory sources cannot be registered over the protocol; "
                    "use EngineServer.register() with a DiscreteDataset"
                )
            fields = {
                "path": d.pop("path", None),
                "name": d.pop("name", None),
                "samples": d.pop("samples", samples),
                "seed": d.pop("seed", seed),
                "scale": d.pop("scale", scale),
            }
            if d:
                raise ValueError(f"unknown source fields: {sorted(d)}")
            return cls(kind=kind if isinstance(kind, str) else str(kind), **fields)
        raise ValueError(
            f"source spec must be a mapping or a 'kind:value' string, got {type(spec).__name__}"
        )

    @classmethod
    def memory(cls, dataset: DiscreteDataset, label: str = "<memory>") -> "DatasetSource":
        """Wrap an already-loaded dataset (tests, embedding applications)."""
        return cls(kind="memory", name=label, dataset=dataset)

    def load(self) -> DiscreteDataset:
        if self.kind == "memory":
            return self.dataset
        if self.kind == "csv":
            from ..datasets.io import read_codes_csv

            return read_codes_csv(self.path)
        if self.kind == "bif":
            from ..datasets.bif import load_bif
            from ..datasets.sampling import forward_sample

            return forward_sample(load_bif(self.path), self.samples, rng=self.seed)
        from ..bench.workloads import make_workload

        return make_workload(self.name, self.samples, scale=self.scale).dataset

    def describe(self) -> dict:
        """JSON-able summary (never the data itself)."""
        out: dict = {"kind": self.kind}
        if self.kind in ("csv", "bif"):
            out["path"] = self.path
        if self.kind == "bif":
            out["samples"] = self.samples
            out["seed"] = self.seed
        if self.kind == "network":
            out["name"] = self.name
            out["samples"] = self.samples
            out["scale"] = self.scale
        if self.kind == "memory":
            out["name"] = self.name
            out["n_variables"] = self.dataset.n_variables
            out["n_samples"] = self.dataset.n_samples
        return out

    def same_as(self, other: "DatasetSource") -> bool:
        """Idempotence check for repeated ``register`` ops."""
        if self.kind == "memory" or other.kind == "memory":
            return self.dataset is other.dataset
        return self.describe() == other.describe()


class _SessionSlot:
    """One live session plus everything serialised behind its lock."""

    __slots__ = ("fingerprint", "session", "server", "manifest", "lock", "ids", "retired")

    def __init__(self, session: LearningSession, dataset_id: str, journal=None) -> None:
        self.fingerprint = session.fingerprint
        self.session = session
        self.server = BatchServer(session)
        self.manifest = self.server.new_manifest(journal=journal)
        self.lock = threading.Lock()
        self.ids = {dataset_id}
        self.retired = False


# --------------------------------------------------------------------- #
# the server
# --------------------------------------------------------------------- #
class EngineServer:
    """Serve learn/blanket streams across many datasets from one process.

    Parameters mirror :class:`LearningSession` (every session the server
    spins up is configured identically — the engine configuration is part
    of each response's fingerprint lineage), plus:

    max_sessions:
        LRU budget of *live* sessions.  Creating a session past the budget
        evicts the least-recently-touched one: its worker pool is shut
        down (unlinking the shm plane), its manifest is retired into the
        run document, and its id re-creates a fresh session on next touch.
    default_dataset:
        Optional id to route requests that carry no ``dataset`` tag —
        lets single-dataset ``fastbns batch`` streams run unchanged.
    default_samples, default_seed, default_scale:
        Defaults applied to source specs that omit them — both the CLI's
        ``--register`` flags and in-stream ``register`` ops resolve
        against the *same* defaults, so the two registration routes
        materialise identical datasets for identical specs.
    lane_weights:
        Optional ``dataset id -> weight`` mapping for the weighted-fair
        dispatcher (see :meth:`set_lane_weight`): a lane's service rate
        under contention is proportional to its weight.  Unlisted ids
        weigh 1.0.
    store:
        Optional durable :class:`~repro.engine.store.EngineStore` (or a
        path, which the server then owns and closes).  One store is
        shared by every session the server spins up: evicted sessions'
        results and skeletons persist, so re-touching their dataset
        revives them warm, and a restarted server over the same path
        answers previously-served streams byte-identically.  All
        manifests (per-session and unrouted) journal their rows into the
        store under one run id.
    run_id:
        Optional explicit journal run id.  Default is a fresh id per
        server; the process plane passes ``<base>.w<K>`` so a respawned
        worker resumes its predecessor's journal sequence and the
        cross-worker merge stays exact.

    The :attr:`forwarder` attribute (default ``None``) plugs the
    multi-process plane in: when set, query requests whose resolved
    dataset fingerprint the forwarder declares non-local are shipped to
    the owning peer worker instead of served here, and successful
    ``register``/``close_dataset`` admin ops are broadcast so every
    worker's registry stays consistent.  The object must provide
    ``is_local(fingerprint) -> bool``, ``forward(fingerprint, raw) ->
    response dict`` (raising :class:`OSError` on peer failure),
    ``on_register(raw)`` and ``on_close(raw)``.  Forwarded requests are
    accounted in the *owner's* manifest only; forward failures land in
    this server's unrouted manifest — so merged totals still count every
    request exactly once.
    """

    def __init__(
        self,
        *,
        test: str = "g2",
        alpha: float = 0.05,
        dof_adjust: str = "structural",
        n_jobs: int = 1,
        backend: str = "process",
        cache_bytes: int = DEFAULT_BUDGET_BYTES,
        use_shm: bool | None = None,
        max_sessions: int = 4,
        default_dataset: str | None = None,
        default_samples: int = 5000,
        default_seed: int = 0,
        default_scale: float | None = None,
        store: EngineStore | str | None = None,
        lane_weights: Mapping[str, float] | None = None,
        run_id: str | None = None,
    ) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        self._owns_store = store is not None and not isinstance(store, EngineStore)
        self.store = EngineStore.ensure(store)
        self._run_id = run_id
        self._journal = (
            self.store.journal(run_id=run_id) if self.store is not None else None
        )
        self._session_kwargs = dict(
            test=test,
            alpha=alpha,
            dof_adjust=dof_adjust,
            n_jobs=int(n_jobs),
            backend=backend,
            cache_bytes=int(cache_bytes),
            use_shm=use_shm,
        )
        self.max_sessions = int(max_sessions)
        self.default_dataset = default_dataset
        self.default_samples = int(default_samples)
        self.default_seed = int(default_seed)
        self.default_scale = default_scale
        self._sources: dict[str, DatasetSource] = {}
        self._id_fp: dict[str, str] = {}
        # Datasets loaded by resolve_fingerprint() before any session
        # exists, keyed by fingerprint: the local path consumes them on
        # first _slot_for (no double load), the forwarding path discards
        # them (the owner worker holds the session).
        self._preloaded: dict[str, DiscreteDataset] = {}
        self._slots: "OrderedDict[str, _SessionSlot]" = OrderedDict()
        self._creation_locks: dict[str, threading.Lock] = {}
        self._registry = threading.Lock()
        self._misc = threading.Lock()
        # Errors that never reached a session (unknown dataset, bad admin
        # request, unparseable line) still belong to the run's audit trail.
        self._unrouted = RunManifest(
            dataset_fingerprint="", engine={"role": "unrouted"}, journal=self._journal
        )
        self._retired_docs: list[dict] = []
        self._created = time.time()
        self._shutdown_doc: dict | None = None
        self.n_requests = 0
        self.n_admin = 0
        self.n_spinups = 0
        self.n_evictions = 0
        self.n_peak_inflight = 0
        self._lane_weights: dict[str, float] = {}
        self._lane_stats: dict[str, dict] = {}
        #: Multi-process plane hook; see the class docstring.
        self.forwarder = None
        #: Extra retired-manifest docs folded into :meth:`manifest` (and
        #: therefore its totals).  The process plane appends a
        #: journal-recovered doc here when a respawned worker inherits a
        #: crashed predecessor's rows.
        self.manifest_extras: list[dict] = []
        if lane_weights:
            for ds_id, weight in lane_weights.items():
                self.set_lane_weight(ds_id, weight)
        self._closed = False
        if int(n_jobs) > 1 and backend == "process":
            # Dispatcher threads fork worker pools lazily; pre-importing
            # the parallel stack keeps those forks from ever happening
            # mid-import of another lane's lazy module load.
            from ..core import learn as _learn  # noqa: F401
            from ..parallel import adaptive as _adaptive  # noqa: F401
            from ..parallel import backends as _backends  # noqa: F401
            from ..parallel import ci_level as _ci_level  # noqa: F401

    # ------------------------------------------------------------------ #
    # registry
    # ------------------------------------------------------------------ #
    def register(self, dataset_id: str, source) -> bool:
        """Register ``dataset_id`` -> source; returns ``True`` when new.

        ``source`` may be a :class:`DatasetSource`, a protocol spec
        (mapping or ``kind:value`` string), or a bare
        :class:`DiscreteDataset` (wrapped as an in-memory source).
        Re-registering the same source is idempotent; a *different* source
        under a taken id raises — ids are append-only within a run so
        response fingerprints stay attributable.
        """
        if not isinstance(dataset_id, str) or not dataset_id:
            raise ValueError(f"dataset id must be a non-empty string, got {dataset_id!r}")
        if isinstance(source, DiscreteDataset):
            source = DatasetSource.memory(source, label=dataset_id)
        else:
            source = DatasetSource.from_spec(
                source,
                samples=self.default_samples,
                seed=self.default_seed,
                scale=self.default_scale,
            )
        with self._registry:
            existing = self._sources.get(dataset_id)
            if existing is not None:
                if existing.same_as(source):
                    return False
                raise ValueError(
                    f"dataset {dataset_id!r} is already registered with a different source"
                )
            self._sources[dataset_id] = source
            self._creation_locks.setdefault(dataset_id, threading.Lock())
        return True

    def datasets(self) -> dict[str, dict]:
        """Registered ids -> {source, fingerprint (if loaded), live}."""
        with self._registry:
            return {
                ds_id: {
                    "source": src.describe(),
                    "fingerprint": self._id_fp.get(ds_id),
                    "live": self._id_fp.get(ds_id) in self._slots,
                }
                for ds_id, src in self._sources.items()
            }

    def _slot_for(self, dataset_id: str) -> _SessionSlot:
        """Resolve an id to its live session slot, creating on first touch."""
        with self._registry:
            source = self._sources.get(dataset_id)
            if source is None:
                known = ", ".join(sorted(self._sources)) or "none registered"
                raise KeyError(f"unknown dataset {dataset_id!r} (known: {known})")
            fp = self._id_fp.get(dataset_id)
            slot = self._slots.get(fp) if fp is not None else None
            if slot is not None:
                self._slots.move_to_end(fp)
                # Replace, don't mutate: manifest() iterates ids under the
                # slot lock, not the registry lock.
                slot.ids = slot.ids | {dataset_id}
                return slot
            creation = self._creation_locks[dataset_id]
        with creation:
            # Another dispatcher lane may have built it while we waited.
            with self._registry:
                fp = self._id_fp.get(dataset_id)
                slot = self._slots.get(fp) if fp is not None else None
                if slot is not None:
                    self._slots.move_to_end(fp)
                    slot.ids = slot.ids | {dataset_id}
                    return slot
            with self._registry:
                fp_hint = self._id_fp.get(dataset_id)
                data = (
                    self._preloaded.pop(fp_hint, None) if fp_hint is not None else None
                )
            if data is None:
                data = source.load()
            session = LearningSession(data, store=self.store, **self._session_kwargs)
            victims: list[_SessionSlot] = []
            with self._registry:
                fp = session.fingerprint
                slot = self._slots.get(fp)
                if slot is not None:
                    # A different id already serves byte-identical data:
                    # share its session (and result cache) instead.
                    session.close()
                    self._slots.move_to_end(fp)
                    slot.ids = slot.ids | {dataset_id}
                    self._id_fp[dataset_id] = fp
                    return slot
                slot = _SessionSlot(session, dataset_id, journal=self._journal)
                self._slots[fp] = slot
                self._id_fp[dataset_id] = fp
                self.n_spinups += 1
                while len(self._slots) > self.max_sessions:
                    victim_fp = next(iter(self._slots))
                    if victim_fp == fp:  # never evict the slot just built
                        break
                    victims.append(self._slots.pop(victim_fp))
                    self.n_evictions += 1
            for victim in victims:
                self._retire(victim, evicted=True)
            return slot

    def _retire(self, slot: _SessionSlot, *, evicted: bool) -> None:
        """Close a slot's session and fold its manifest into the run doc.

        Waits for the slot's in-flight request (if any) under its lock, so
        eviction never yanks a pool out from under a running learn.
        """
        with slot.lock:
            slot.retired = True
            cache_doc = slot.session.cache_stats().as_dict()
            workers = slot.session.worker_cache_stats()
            if workers:
                cache_doc["workers"] = workers
            doc = slot.manifest.to_dict(cache_stats=cache_doc)
            doc["dataset_ids"] = sorted(slot.ids)
            doc["live"] = False
            doc["evicted"] = evicted
            slot.session.close()
        with self._misc:
            self._retired_docs.append(doc)

    def resolve_fingerprint(self, dataset_id: str) -> str:
        """Resolve an id to its dataset content fingerprint.

        Unlike :meth:`_slot_for` this never spins up a session: on first
        touch the source is loaded, fingerprinted, and the dataset
        stashed for the local serving path to consume (so a subsequent
        ``_slot_for`` does not load twice) — which is what lets the lane
        keyer and the process router place a request without paying for
        a worker pool it may never use.  Raises ``KeyError`` for an
        unknown id and whatever the source raises when it cannot load.
        """
        with self._registry:
            fp = self._id_fp.get(dataset_id)
            if fp is not None:
                return fp
            source = self._sources.get(dataset_id)
            if source is None:
                known = ", ".join(sorted(self._sources)) or "none registered"
                raise KeyError(f"unknown dataset {dataset_id!r} (known: {known})")
            creation = self._creation_locks[dataset_id]
        with creation:
            with self._registry:
                fp = self._id_fp.get(dataset_id)
                if fp is not None:
                    return fp
            data = source.load()
            fp = dataset_fingerprint(data)
            with self._registry:
                self._id_fp[dataset_id] = fp
                if fp not in self._slots:
                    self._preloaded.setdefault(fp, data)
            return fp

    # ------------------------------------------------------------------ #
    # request handling
    # ------------------------------------------------------------------ #
    def handle(self, raw) -> dict:
        """Serve one request (query or admin); never raises on bad input."""
        if self._closed:
            raise RuntimeError("server is closed")
        with self._misc:
            self.n_requests += 1
        if isinstance(raw, ParseFailure):
            return self.reject(raw.message)
        if not isinstance(raw, Mapping):
            return self.reject(f"request must be a JSON object, got {type(raw).__name__}")
        op = raw.get("op")
        if op in ADMIN_OPS:
            with self._misc:
                self.n_admin += 1
            handler = {
                "register": self._op_register,
                "close_dataset": self._op_close_dataset,
                "stats": self._op_stats,
                "manifest": self._op_manifest,
            }[op]
            return handler(raw)
        return self._handle_query(raw)

    def _handle_query(self, raw: Mapping) -> dict:
        t0 = time.perf_counter()
        payload = dict(raw)
        dataset_id = payload.pop("dataset", self.default_dataset)
        op = payload.get("op")
        if dataset_id is None:
            return self.reject(
                "request carries no 'dataset' tag and the server has no default dataset",
                op=op,
                t0=t0,
            )
        if not isinstance(dataset_id, str):
            return self.reject(
                f"'dataset' must be a string id, got {dataset_id!r}", op=op, t0=t0
            )
        forwarder = self.forwarder
        if forwarder is not None:
            try:
                fp = self.resolve_fingerprint(dataset_id)
            except (KeyError, ValueError, OSError) as exc:
                message = (
                    exc.args[0] if isinstance(exc, KeyError) and exc.args else str(exc)
                )
                return self.reject(message, op=op, dataset=dataset_id, t0=t0)
            if not forwarder.is_local(fp):
                with self._registry:
                    # The owner worker holds the session; drop the
                    # resolve-time stash so a pure router/front worker
                    # never pins remote datasets in memory.
                    self._preloaded.pop(fp, None)
                try:
                    return forwarder.forward(fp, raw)
                except OSError as exc:
                    # The failure is accounted *here* (unrouted): the
                    # owner never journalled a row for it, so merged
                    # totals still count the request exactly once.
                    return self.reject(
                        f"peer worker unavailable: {exc}",
                        op=op,
                        dataset=dataset_id,
                        t0=t0,
                    )
        while True:
            try:
                slot = self._slot_for(dataset_id)
            except (KeyError, ValueError, OSError) as exc:
                # KeyError's str() quotes its message; unwrap for JSON.
                message = exc.args[0] if isinstance(exc, KeyError) and exc.args else str(exc)
                return self.reject(message, op=op, dataset=dataset_id, t0=t0)
            with slot.lock:
                if slot.retired:
                    continue  # evicted while we waited: re-resolve
                resp = slot.server.handle(payload)
                slot.manifest.add_request(
                    resp["op"],
                    resp["fingerprint"],
                    resp["cached"],
                    resp["elapsed_s"],
                    error=resp["error"],
                )
            resp["dataset"] = dataset_id
            return resp

    def reject(
        self,
        message: str,
        *,
        op: str | None = None,
        dataset: str | None = None,
        t0: float | None = None,
    ) -> dict:
        """Uniform error response for requests that reach no session.

        Public because stream framers sit above the server: the CLI calls
        this for lines that fail JSON parsing, so even those show up in
        the run manifest instead of vanishing.
        """
        elapsed = 0.0 if t0 is None else time.perf_counter() - t0
        known_op = op if op in QUERY_OPS + ADMIN_OPS else None
        with self._misc:
            self._unrouted.add_request(known_op, None, False, elapsed, error=message)
        return {
            "op": known_op,
            "dataset": dataset if isinstance(dataset, str) else None,
            "fingerprint": None,
            "cached": False,
            "elapsed_s": elapsed,
            "result": None,
            "error": message,
        }

    def _admin_ok(self, op: str, dataset: str | None, result: dict, t0: float) -> dict:
        return {
            "op": op,
            "dataset": dataset,
            "fingerprint": None,
            "cached": False,
            "elapsed_s": time.perf_counter() - t0,
            "result": result,
            "error": None,
        }

    def _op_register(self, raw: Mapping) -> dict:
        t0 = time.perf_counter()
        d = dict(raw)
        d.pop("op")
        dataset_id = d.pop("dataset", None)
        spec = d.pop("source", None)
        # Internal marker set by peer-worker broadcasts: a relayed
        # register is applied locally but never re-broadcast, which is
        # what keeps the process plane's fan-out from echoing forever.
        relay = bool(d.pop("relay", False))
        if d:
            return self.reject(
                f"unknown register fields: {sorted(d)}", op="register", t0=t0
            )
        try:
            # The raw spec goes through register() so in-stream ops resolve
            # against the same default_samples/seed/scale as --register.
            created = self.register(dataset_id, spec)
        except (ValueError, TypeError) as exc:
            return self.reject(
                str(exc),
                op="register",
                dataset=dataset_id if isinstance(dataset_id, str) else None,
                t0=t0,
            )
        if self.forwarder is not None and not relay:
            # Broadcast only after local success: validation is
            # deterministic, so peers accept exactly what we accepted.
            self.forwarder.on_register(raw)
        with self._registry:
            described = self._sources[dataset_id].describe()
        return self._admin_ok(
            "register",
            dataset_id,
            {"registered": True, "already": not created, "source": described},
            t0,
        )

    def _op_close_dataset(self, raw: Mapping) -> dict:
        t0 = time.perf_counter()
        d = dict(raw)
        d.pop("op")
        dataset_id = d.pop("dataset", None)
        unregister = bool(d.pop("unregister", False))
        relay = bool(d.pop("relay", False))
        if d:
            return self.reject(
                f"unknown close_dataset fields: {sorted(d)}", op="close_dataset", t0=t0
            )
        if not isinstance(dataset_id, str):
            return self.reject(
                f"close_dataset needs a string 'dataset' id, got {dataset_id!r}",
                op="close_dataset",
                t0=t0,
            )
        with self._registry:
            if dataset_id not in self._sources:
                known = ", ".join(sorted(self._sources)) or "none registered"
                message = f"unknown dataset {dataset_id!r} (known: {known})"
                slot = None
            else:
                message = None
                fp = self._id_fp.get(dataset_id)
                slot = self._slots.pop(fp, None) if fp is not None else None
                if fp is not None:
                    self._preloaded.pop(fp, None)
                if unregister:
                    self._sources.pop(dataset_id)
                    self._id_fp.pop(dataset_id, None)
        if message is not None:
            return self.reject(message, op="close_dataset", dataset=dataset_id, t0=t0)
        if slot is not None:
            self._retire(slot, evicted=False)
        if self.forwarder is not None and not relay:
            self.forwarder.on_close(raw)
        return self._admin_ok(
            "close_dataset",
            dataset_id,
            {
                "closed": slot is not None,
                "unregistered": unregister,
                "fingerprint": slot.fingerprint if slot is not None else None,
            },
            t0,
        )

    def _op_stats(self, raw: Mapping) -> dict:
        t0 = time.perf_counter()
        d = dict(raw)
        d.pop("op")
        if d:
            return self.reject(f"unknown stats fields: {sorted(d)}", op="stats", t0=t0)
        return self._admin_ok("stats", None, self.stats(), t0)

    def _op_manifest(self, raw: Mapping) -> dict:
        """Admin op returning the full run document as a response.

        The process plane's manifest-collection path: the router asks
        each worker's internal socket for its document and merges them —
        over the stream protocol (no message-size limits), behind the
        admin barrier (every dispatched request is accounted first).
        """
        t0 = time.perf_counter()
        d = dict(raw)
        d.pop("op")
        if d:
            return self.reject(
                f"unknown manifest fields: {sorted(d)}", op="manifest", t0=t0
            )
        return self._admin_ok("manifest", None, self.manifest(), t0)

    # ------------------------------------------------------------------ #
    # streams
    # ------------------------------------------------------------------ #
    def _lane_key(self, raw) -> object:
        """Resolve a request to its dispatch lane.

        Lanes are keyed by the *content fingerprint* of the dataset the
        request will run on, not its raw ``dataset`` tag: two registered
        ids naming byte-identical data share one session and one result
        cache, so they must also share one lane — otherwise their
        interleaving (and therefore ``cached`` accounting) is
        nondeterministic versus the sequential run.  Resolving an id seen
        for the first time loads its source (exactly what first touch
        costs on the sequential path); an id that cannot resolve —
        unknown, broken source — gets a per-id lane so its error
        responses stay ordered without blocking healthy lanes.
        """
        dataset_id = request_dataset_id(raw, self.default_dataset)
        if dataset_id is None:
            return None  # malformed / ParseFailure: shared error lane
        try:
            # Fingerprint only — no session spin-up at intake; the first
            # query on the lane creates the session (or a forwarder
            # ships it to the owning worker, which creates it there).
            return self.resolve_fingerprint(dataset_id)
        except (KeyError, ValueError, OSError):
            return ("unresolved", dataset_id)

    @staticmethod
    def _is_admin(raw) -> bool:
        return isinstance(raw, Mapping) and raw.get("op") in ADMIN_OPS

    # ------------------------------------------------------------------ #
    # weighted-fair lanes
    # ------------------------------------------------------------------ #
    def set_lane_weight(self, dataset_id: str, weight: float) -> None:
        """Weight the dispatch lane of requests routed via ``dataset_id``.

        Weights are relative: under contention a backlogged lane's
        service rate is proportional to its weight (default 1.0 for ids
        never configured).  When several ids alias one dataset
        fingerprint — and therefore one lane — the lane serves at the
        strongest weight among them.  Takes effect for requests
        dispatched after the call; never changes any response payload,
        only the order concurrent lanes are served in.
        """
        if not isinstance(dataset_id, str) or not dataset_id:
            raise ValueError(f"dataset id must be a non-empty string, got {dataset_id!r}")
        w = float(weight)
        if not math.isfinite(w) or w <= 0:
            raise ValueError(f"lane weight must be a positive finite number, got {weight!r}")
        with self._registry:
            self._lane_weights[dataset_id] = w

    def _request_weight(self, raw) -> float:
        dataset_id = request_dataset_id(raw, self.default_dataset)
        if dataset_id is None:
            return 1.0
        with self._registry:
            return self._lane_weights.get(dataset_id, 1.0)

    # Shared with the process plane; see repro.engine.routing.
    _lane_label = staticmethod(lane_label)

    def _note_lane_served(self, pending: "_Pending") -> None:
        with self._misc:
            rec = self._lane_stats.setdefault(
                pending.lane, {"n_served": 0, "wait_s": 0.0, "busy_s": 0.0}
            )
            rec["n_served"] += 1
            rec["wait_s"] += max(0.0, pending.t_start - pending.t_in)
            rec["busy_s"] += max(0.0, pending.t_done - pending.t_start)

    def serve_iter(
        self,
        requests: Iterable,
        *,
        threads: int = 1,
        window: int = DEFAULT_WINDOW,
        timings: list | None = None,
    ) -> Iterator[dict]:
        """Serve a request stream incrementally; responses in input order.

        The streaming dispatch core.  An intake thread pulls from
        ``requests`` lazily — never more than ``window`` requests are
        dispatched but not yet yielded, so memory is bounded by the
        window (not the stream length) and a lockstep producer that
        waits on response *i* before sending request *i+1* always makes
        progress.  ``threads > 1`` runs that many persistent workers
        picking (lane, request) pairs from the weighted-fair
        :class:`_LaneScheduler` — one lane per resolved dataset content
        fingerprint: per-session request order (and result-cache
        behaviour) matches the sequential run exactly, different
        sessions overlap, and no backlogged lane can monopolise the
        workers past its weight share.  Admin ops are stream barriers —
        everything dispatched before them completes first.

        Responses are byte-identical to the sequential ``threads=1``
        run over the same stream whenever no session is evicted mid
        stream; under LRU eviction pressure a repeat may be recomputed
        (``cached=False``) where the sequential run would have hit, with
        payloads identical either way.

        ``timings``, when given, is a caller-owned list that receives one
        record per yielded response (same order as the responses):
        ``{"lane", "t_in", "t_start", "t_done", "t_yield"}`` with
        ``time.monotonic()`` stamps at intake, worker pick, completion
        and yield.  The wire schema is untouched — this is the latency
        harness's side channel (:mod:`repro.engine.workload`).

        ``threads <= 1`` degenerates to a strict request-by-request
        loop: no intake thread, no reordering, peak in-flight of one.
        """
        if threads <= 1:
            for raw in requests:
                t_in = time.monotonic()
                resp = self.handle(raw)
                if timings is not None:
                    t_done = time.monotonic()
                    if self._is_admin(raw):
                        label = "admin"
                    elif isinstance(raw, Mapping) and isinstance(
                        raw.get("dataset", self.default_dataset), str
                    ):
                        label = raw.get("dataset", self.default_dataset)
                    else:
                        label = "malformed"
                    timings.append(
                        {
                            "lane": label,
                            "t_in": t_in,
                            "t_start": t_in,
                            "t_done": t_done,
                            "t_yield": t_done,
                        }
                    )
                yield resp
            return

        window = max(1, int(window))
        order_q: "queue.Queue" = queue.Queue()
        permits = threading.BoundedSemaphore(window)
        stop = threading.Event()
        # Held by intake while it executes an admin op inline: the
        # consumer's cleanup takes it after setting `stop`, so a close
        # can never return while a registry mutation is mid-flight (the
        # caller may write the manifest immediately after).
        admin_guard = threading.Lock()
        sched = _LaneScheduler()
        live_lock = threading.Lock()
        live = [0]  # dispatched-but-not-yet-yielded, guarded by live_lock
        _END, _FAIL = object(), object()

        def worker() -> None:
            while True:
                item = sched.take()
                if item is None:
                    return
                key, pending = item
                pending.t_start = time.monotonic()
                try:
                    pending.response = self.handle(pending.raw)
                except BaseException as exc:  # surfaced at yield, in order
                    pending.exc = exc
                finally:
                    pending.t_done = time.monotonic()
                    pending.done.set()
                    self._note_lane_served(pending)
                    sched.release(key)

        workers = [
            threading.Thread(target=worker, name=f"engine-serve-worker-{i}", daemon=True)
            for i in range(threads)
        ]
        for w in workers:
            w.start()

        def dispatch(pending: "_Pending") -> None:
            key = self._lane_key(pending.raw)
            pending.lane = self._lane_label(key)
            sched.push(key, pending, weight=self._request_weight(pending.raw))

        def intake() -> None:
            inflight: list[_Pending] = []
            n_inflight = 0
            try:
                for raw in requests:
                    # The permit is taken *before* the item counts as
                    # buffered, so dispatched-but-unyielded requests
                    # never exceed the window.
                    permits.acquire()
                    if stop.is_set():
                        permits.release()
                        return
                    with live_lock:
                        live[0] += 1
                        n_inflight = max(n_inflight, live[0])
                    pending = _Pending(raw)
                    pending.t_in = time.monotonic()
                    if self._is_admin(raw):
                        # Barrier: every prior request completes
                        # (not necessarily yields) before the op.
                        for prior in inflight:
                            prior.done.wait()
                        inflight.clear()
                        with admin_guard:
                            # Re-check under the guard: once the
                            # consumer observed `stop` and took the
                            # guard, no new mutation may start.
                            if stop.is_set():
                                permits.release()
                                return
                            pending.lane = "admin"
                            pending.t_start = time.monotonic()
                            try:
                                pending.response = self.handle(raw)
                            except BaseException as exc:
                                pending.exc = exc
                        pending.t_done = time.monotonic()
                        pending.done.set()
                        self._note_lane_served(pending)
                    else:
                        dispatch(pending)
                        inflight.append(pending)
                        if len(inflight) > window:
                            # Completed prefixes leave the barrier set
                            # as the consumer drains them.
                            inflight = [
                                p for p in inflight if not p.done.is_set()
                            ]
                    order_q.put(pending)
            except BaseException as exc:  # broken request iterator
                order_q.put((_FAIL, exc))
                return
            finally:
                with self._misc:
                    self.n_peak_inflight = max(self.n_peak_inflight, n_inflight)
            order_q.put(_END)

        intake_thread = threading.Thread(
            target=intake, name="engine-serve-intake", daemon=True
        )
        intake_thread.start()
        try:
            while True:
                item = order_q.get()
                if item is _END:
                    return
                if isinstance(item, tuple) and item[0] is _FAIL:
                    raise item[1]
                item.done.wait()
                with live_lock:
                    live[0] -= 1
                permits.release()
                if item.exc is not None:
                    raise item.exc
                if timings is not None:
                    timings.append(
                        {
                            "lane": item.lane,
                            "t_in": item.t_in,
                            "t_start": item.t_start,
                            "t_done": item.t_done,
                            "t_yield": time.monotonic(),
                        }
                    )
                yield item.response
        finally:
            # Early exit (consumer gone, error, interrupt) and normal
            # completion share one wind-down: stop intake, free it if it
            # is blocked on a permit, wait out any admin mutation it is
            # executing, then close the scheduler — workers drain every
            # dispatched request (the manifest accounts for all of them)
            # and exit.  A dispatch racing the close lands in `push`'s
            # closed check, which intake surfaces as a no-op exit.
            stop.set()
            try:
                permits.release()
            except ValueError:
                pass
            with admin_guard:
                pass
            sched.close()
            for w in workers:
                w.join()

    def serve(
        self,
        requests: Iterable,
        *,
        threads: int = 1,
        window: int = DEFAULT_WINDOW,
        timings: list | None = None,
    ) -> list[dict]:
        """Serve a whole request stream; responses in input order.

        Materialising convenience over :meth:`serve_iter` (identical
        responses — the streaming path is the only dispatcher).
        """
        return list(
            self.serve_iter(requests, threads=threads, window=window, timings=timings)
        )

    # ------------------------------------------------------------------ #
    # introspection & manifest
    # ------------------------------------------------------------------ #
    def lane_stats(self) -> dict[str, dict]:
        """Per-lane dispatch counters accumulated across streamed serves.

        ``lane label -> {n_served, wait_s, busy_s}`` where the label is
        the resolved dataset fingerprint (or ``unresolved:<id>`` /
        ``malformed``), ``wait_s`` sums queue time (intake to worker
        pick) and ``busy_s`` sums service time.  Kept out of
        :meth:`stats` — and therefore out of the in-stream ``stats``
        admin op — because the wall-clock sums are nondeterministic,
        and protocol responses must stay byte-identical to the
        sequential run's.
        """
        with self._misc:
            return {label: dict(rec) for label, rec in self._lane_stats.items()}

    def stats(self) -> dict:
        """JSON-able snapshot of the whole server."""
        manifest = self.manifest()
        with self._registry:
            live = {fp: slot for fp, slot in self._slots.items()}
        per_session = {}
        for fp, slot in live.items():
            with slot.lock:
                if not slot.retired:
                    per_session[fp] = {
                        "dataset_ids": sorted(slot.ids),
                        **slot.server.stats(),
                    }
        with self._misc:
            counters = {
                "n_requests": self.n_requests,
                "n_admin": self.n_admin,
            }
        with self._registry:
            lane_weights = dict(self._lane_weights)
        return {
            **counters,
            "sessions": {
                "live": len(per_session),
                "budget": self.max_sessions,
                "spinups": self.n_spinups,
                "evictions": self.n_evictions,
            },
            "dispatch": {
                "peak_inflight": self.n_peak_inflight,
                "lane_weights": lane_weights,
            },
            "datasets": self.datasets(),
            "totals": manifest["totals"],
            "per_session": per_session,
            "store": None if self.store is None else self.store.stats(),
        }

    def manifest(self) -> dict:
        """The run document spanning every session, live and retired."""
        with self._registry:
            live = list(self._slots.values())
        session_docs = []
        for slot in live:
            with slot.lock:
                if slot.retired:
                    continue
                cache_doc = slot.session.cache_stats().as_dict()
                workers = slot.session.worker_cache_stats()
                if workers:
                    cache_doc["workers"] = workers
                doc = slot.manifest.to_dict(cache_stats=cache_doc)
                doc["dataset_ids"] = sorted(slot.ids)
                doc["live"] = True
                doc["evicted"] = False
            session_docs.append(doc)
        with self._misc:
            session_docs.extend(self._retired_docs)
            session_docs.extend(self.manifest_extras)
            unrouted = self._unrouted.to_dict()
            shutdown = dict(self._shutdown_doc) if self._shutdown_doc else None
        totals = merge_totals(
            [doc["totals"] for doc in session_docs] + [unrouted["totals"]]
        )
        engine = dict(self._session_kwargs)
        if self.store is not None:
            engine["store"] = self.store.path
        return {
            "manifest_version": MANIFEST_VERSION,
            "created_unix": self._created,
            "engine": engine,
            "run_id": self._run_id if self._journal is None else self._journal.run_id,
            "totals": totals,
            "sessions": session_docs,
            "unrouted": unrouted,
            "shutdown": shutdown,
        }

    def note_shutdown(
        self, reason: str, *, drained: bool = True, signum: int | None = None
    ) -> None:
        """Record how the run ended; surfaces as ``manifest()["shutdown"]``.

        Called by the CLI/transport when a signal (or broken pipe) stops
        intake: the manifest then distinguishes a run that drained its
        in-flight lanes from one that was cut off, which is what makes
        an interrupted run's audit trail trustworthy.
        """
        with self._misc:
            self._shutdown_doc = shutdown_doc(reason, drained=drained, signum=signum)
            if self._journal is not None:
                self._journal.append({"kind": "shutdown", **self._shutdown_doc})

    def write_manifest(self, path) -> None:
        import json
        from pathlib import Path

        Path(path).write_text(json.dumps(self.manifest(), indent=2) + "\n")

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Close every live session (pools down, shm unlinked); idempotent."""
        with self._registry:
            slots = list(self._slots.values())
            self._slots.clear()
        for slot in slots:
            self._retire(slot, evicted=False)
        if self._owns_store and self.store is not None:
            self.store.close()
        self._closed = True

    def __enter__(self) -> "EngineServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._registry:
            return (
                f"EngineServer(datasets={len(self._sources)}, "
                f"live_sessions={len(self._slots)}/{self.max_sessions}, "
                f"n_jobs={self._session_kwargs['n_jobs']})"
            )
