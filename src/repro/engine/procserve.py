"""Multi-process serve plane: fingerprint-sharded workers behind a router.

One :class:`~repro.engine.server.EngineServer` process serves every
connection under a single GIL — JSON parsing, response assembly and lane
dispatch all contend even though the heavy CI kernels run in process
pools, which caps the socket bench near 2x two lockstep engines.  The
process plane (``fastbns serve --processes N``) escapes that ceiling:

* the **router** (this process) owns the listen socket and a small
  accept loop; each accepted connection's fd is passed to a serve worker
  over a Unix ``SOCK_SEQPACKET`` socketpair (:func:`socket.send_fds`) —
  or, in ``reuseport`` mode, workers bind the same TCP port with
  ``SO_REUSEPORT`` and the kernel balances accepts, no fd passing at
  all;
* each **serve worker** is a forked process running its own
  :class:`EngineServer` + :meth:`serve_iter
  <repro.engine.server.EngineServer.serve_iter>` (its own GIL), an
  adopt-only front :class:`~repro.engine.transport.EngineTransport` for
  client connections, and an internal Unix-socket transport peers
  forward through;
* **placement** is by resolved dataset *content fingerprint* on a
  consistent-hash ring (:class:`~repro.engine.routing.HashRing`): every
  session lives in exactly one worker, and ids aliasing byte-identical
  data land on the same worker — the single-process lane-determinism
  guarantee survives the process split.  A front worker holding a
  connection forwards non-local requests to the owner over the same
  JSONL protocol (lockstep per lane, which per-lane serialisation
  already required);
* each worker gets its **own store shard** (``<path>.w<K>`` — the
  store's SQLite layer is deliberately single-process) and journals
  under run id ``<base>.w<K>``; the router merges the per-worker
  :class:`~repro.engine.manifest.RunManifest` documents with
  :func:`~repro.engine.manifest.merge_totals`, so run totals are the
  exact sum of the parts;
* **drain** mirrors the single-process path: SIGINT/SIGTERM stop the
  accept loop, every worker drains its client connections at line
  boundaries (internal sockets stay up so in-flight forwards finish),
  the router collects per-worker manifests over the internal sockets
  (the ``manifest`` admin op — stream framed, no message-size limits),
  then workers exit; the CLI writes the merged manifest and exits
  ``128+signum``;
* a worker that **dies** (crash, SIGKILL) is respawned under the same
  run id and store shard: the journal's write-through rows let the
  successor fold the predecessor's served requests back into the merged
  totals (:func:`~repro.engine.manifest.recovered_manifest_doc`), while
  requests in flight on the dead worker surface as clean error
  responses at the forwarding front worker — accounted exactly once,
  in its unrouted manifest.

Workers ignore SIGINT/SIGTERM (the router orchestrates shutdown); EOF on
the control socket means the router died, and a worker then drains and
exits on its own.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import sys
import tempfile
import threading
import time
import traceback
from dataclasses import dataclass, field

from .client import EngineClient
from .manifest import (
    MANIFEST_VERSION,
    merge_totals,
    recovered_manifest_doc,
    shutdown_doc,
)
from .routing import HashRing
from .server import DEFAULT_WINDOW, EngineServer
from .store.journal import new_run_id
from .transport import EngineTransport, parse_address

__all__ = ["ProcessPlane", "WorkerForwarder"]

#: recv buffer for control messages (JSON, small).
_CTL_BUF = 1 << 16
#: fds per control message (exactly one for "conn").
_CTL_MAXFDS = 4


class WorkerForwarder:
    """Per-worker request forwarding over the internal socket plane.

    Implements the :attr:`EngineServer.forwarder
    <repro.engine.server.EngineServer.forwarder>` interface: placement
    via the shared :class:`~repro.engine.routing.HashRing`, lockstep
    forwarding of non-local query lanes to their owner worker, and
    best-effort broadcast of successful ``register``/``close_dataset``
    ops (marked ``relay`` so peers never echo them back).

    Connections are cached per ``(owner, lane fingerprint)`` for queries
    — the front dispatcher serialises each lane, so a lane's client is
    never used concurrently — and per peer for admin broadcasts.  The
    pop/reinsert pattern around each use makes that invariant explicit:
    a client is out of the cache while a request is in flight.
    """

    def __init__(
        self,
        index: int,
        ring: HashRing,
        internal_paths: list[str],
        *,
        notify=None,
        timeout: float | None = None,
    ) -> None:
        self.index = int(index)
        self.ring = ring
        self._paths = list(internal_paths)
        self._notify = notify
        self._timeout = timeout
        self._lock = threading.Lock()
        self._lane_clients: dict[tuple[int, str], EngineClient] = {}
        self._admin_clients: dict[int, EngineClient] = {}
        self.n_forwarded = 0
        self.n_forward_errors = 0
        self.n_broadcast_errors = 0

    # ------------------------------------------------------------------ #
    # placement
    # ------------------------------------------------------------------ #
    def owner(self, fingerprint: str) -> int:
        return self.ring.owner(fingerprint)

    def is_local(self, fingerprint: str) -> bool:
        return self.owner(fingerprint) == self.index

    # ------------------------------------------------------------------ #
    # query forwarding
    # ------------------------------------------------------------------ #
    def _connect(self, peer: int) -> EngineClient:
        return EngineClient(f"unix:{self._paths[peer]}", timeout=self._timeout)

    def forward(self, fingerprint: str, raw) -> dict:
        """Ship one query to its owner; the owner's response comes back
        verbatim (it is accounted in the *owner's* manifest).  Raises
        :class:`OSError` when the peer is unreachable — the caller turns
        that into a clean unrouted error response."""
        peer = self.owner(fingerprint)
        key = (peer, fingerprint)
        with self._lock:
            client = self._lane_clients.pop(key, None)
        try:
            if client is None:
                client = self._connect(peer)
            response = client.request(dict(raw))
        except (OSError, ValueError) as exc:
            if client is not None:
                client.close()
            with self._lock:
                self.n_forward_errors += 1
            raise OSError(f"worker {peer}: {exc}") from exc
        with self._lock:
            self._lane_clients[key] = client
            self.n_forwarded += 1
        return response

    # ------------------------------------------------------------------ #
    # admin broadcast
    # ------------------------------------------------------------------ #
    def _broadcast(self, raw) -> None:
        """Replay a successful admin op on every peer (best effort).

        Failures only bump a counter: a peer that is down gets the
        registration replayed by the router when it respawns, and a
        request routed to a stale peer fails cleanly at forward time.
        """
        doc = {**dict(raw), "relay": True}
        for peer in self.ring.workers:
            if peer == self.index:
                continue
            with self._lock:
                client = self._admin_clients.pop(peer, None)
            try:
                if client is None:
                    client = self._connect(peer)
                client.request(doc)
            except (OSError, ValueError):
                if client is not None:
                    client.close()
                client = None
                with self._lock:
                    self.n_broadcast_errors += 1
                continue
            with self._lock:
                self._admin_clients[peer] = client

    def on_register(self, raw) -> None:
        self._broadcast(raw)
        if self._notify is not None:
            self._notify(
                {
                    "kind": "registered",
                    "dataset": dict(raw).get("dataset"),
                    "spec": dict(raw).get("source"),
                }
            )

    def on_close(self, raw) -> None:
        self._broadcast(raw)
        if self._notify is not None:
            d = dict(raw)
            self._notify(
                {
                    "kind": "closed",
                    "dataset": d.get("dataset"),
                    "unregister": bool(d.get("unregister", False)),
                }
            )

    def close(self) -> None:
        with self._lock:
            clients = list(self._lane_clients.values()) + list(
                self._admin_clients.values()
            )
            self._lane_clients.clear()
            self._admin_clients.clear()
        for client in clients:
            client.close()


# --------------------------------------------------------------------- #
# worker process
# --------------------------------------------------------------------- #
@dataclass
class _WorkerConfig:
    """Everything a forked serve worker needs (inherited by fork, so
    in-memory registrations — e.g. test datasets — work too)."""

    index: int
    n_workers: int
    internal_paths: list[str]
    registrations: list[tuple[str, object]]
    server_kwargs: dict
    threads: int
    window: int
    mode: str  # "fds" | "reuseport"
    store_base: str | None
    run_base: str
    replicas: int
    tcp_bind: tuple[str, int] | None  # reuseport mode only


def _worker_main(cfg: _WorkerConfig, control: socket.socket) -> int:
    """Body of one serve worker (runs in the forked child; never returns
    to the caller — the fork site wraps it in ``os._exit``)."""
    # The router orchestrates shutdown over the control socket; a signal
    # delivered to the process group (Ctrl-C) must not double-drain.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_IGN)

    store = None
    run_id = f"{cfg.run_base}.w{cfg.index}"
    if cfg.store_base is not None:
        store = f"{cfg.store_base}.w{cfg.index}"
    server = EngineServer(**cfg.server_kwargs, store=store, run_id=run_id)
    if server.store is not None:
        # Respawn under the same run id: the predecessor's journalled
        # rows become a synthetic retired doc so merged totals still
        # count everything it served.  (A fresh spawn finds no rows.)
        recovered = recovered_manifest_doc(server.store.journal_rows(run_id))
        if recovered is not None:
            server.manifest_extras.append(recovered)
    for ds_id, spec in cfg.registrations:
        server.register(ds_id, spec)

    send_lock = threading.Lock()

    def notify(doc: dict) -> None:
        payload = json.dumps(doc).encode("utf-8")
        with send_lock:
            try:
                control.send(payload)
            except OSError:
                pass  # router gone; the control-EOF path will wind down

    server.forwarder = WorkerForwarder(
        cfg.index,
        HashRing(cfg.n_workers, replicas=cfg.replicas),
        cfg.internal_paths,
        notify=notify,
    )
    internal = EngineTransport(
        server, f"unix:{cfg.internal_paths[cfg.index]}", threads=1
    )
    internal.start()
    if cfg.mode == "reuseport":
        front = EngineTransport(
            server,
            cfg.tcp_bind,
            threads=cfg.threads,
            window=cfg.window,
            reuseport=True,
        )
    else:
        front = EngineTransport(server, None, threads=cfg.threads, window=cfg.window)
    front.start()
    notify({"kind": "ready", "worker": cfg.index, "pid": os.getpid()})

    def wind_down(*, drain_front: bool) -> None:
        front.shutdown(drain=drain_front)
        server.forwarder.close()
        internal.shutdown(drain=True)
        server.close()

    while True:
        try:
            msg, fds, _flags, _addr = socket.recv_fds(control, _CTL_BUF, _CTL_MAXFDS)
        except OSError:
            msg, fds = b"", []
        if not msg:
            # Router died (EOF/error): self-drain so in-flight clients
            # still get their responses, then exit.
            wind_down(drain_front=True)
            return 0
        try:
            doc = json.loads(msg)
        except ValueError:
            for fd in fds:
                os.close(fd)
            continue
        kind = doc.get("kind")
        if kind == "conn" and fds:
            sock = socket.socket(fileno=fds[0])
            for fd in fds[1:]:
                os.close(fd)
            try:
                front.adopt(sock)
            except RuntimeError:
                pass  # already draining; adopt() closed the socket
        elif kind == "register":
            try:
                server.register(doc["dataset"], doc["spec"])
            except (KeyError, ValueError, TypeError) as exc:
                notify(
                    {
                        "kind": "register-failed",
                        "worker": cfg.index,
                        "dataset": doc.get("dataset"),
                        "message": str(exc),
                    }
                )
        elif kind == "drain":
            # Phase one of the drain protocol: stop serving clients at
            # line boundaries.  The internal transport stays up — peers
            # may still be finishing forwards, and the router collects
            # manifests through it — until "exit".
            front.shutdown(drain=True)
            notify(
                {
                    "kind": "drained",
                    "worker": cfg.index,
                    "n_responses": front.n_responses,
                    "n_connections": front.n_connections,
                }
            )
        elif kind == "exit":
            wind_down(drain_front=False)
            return 0


# --------------------------------------------------------------------- #
# router
# --------------------------------------------------------------------- #
@dataclass
class _Worker:
    """Router-side record of one serve worker process."""

    index: int
    pid: int = 0
    control: socket.socket | None = None
    reader: threading.Thread | None = None
    ready: threading.Event = field(default_factory=threading.Event)
    drained: threading.Event = field(default_factory=threading.Event)
    drain_doc: dict = field(default_factory=dict)
    respawns: int = 0
    alive: bool = True


class ProcessPlane:
    """``N`` fingerprint-sharded serve workers behind one router.

    Parameters
    ----------
    listen:
        Client-facing address (``HOST:PORT`` or ``unix:PATH``; port 0
        picks an ephemeral port — read :meth:`describe` back).
    processes:
        Number of serve workers.
    server_kwargs:
        Keyword arguments for each worker's :class:`EngineServer`
        (everything except ``store``/``run_id``, which the plane shards
        per worker).
    registrations:
        ``(dataset id, source spec)`` pairs applied to every worker at
        spawn (and replayed to respawned workers, together with sources
        registered in-stream later).
    threads / window:
        Per-connection dispatch parallelism inside each worker.
    store:
        Optional base store path; worker ``K`` persists to
        ``<store>.w<K>`` (the store is single-process by design).
        Without a store a killed worker's in-flight accounting cannot
        be recovered — the merged manifest's ``respawns`` counters say
        when that caveat applies.
    mode:
        ``"fds"`` (default): the router accepts and passes connection
        fds to workers round-robin.  ``"reuseport"``: workers bind the
        same TCP port with ``SO_REUSEPORT`` and the kernel balances
        accepts (TCP only).
    max_respawns:
        Per-worker cap on automatic respawns — a worker that keeps
        dying is eventually left down (its fingerprints then fail fast
        at forward time) instead of fork-looping.
    """

    #: Seconds a drain waits per worker before escalating to SIGTERM.
    DRAIN_TIMEOUT_S = 60.0

    def __init__(
        self,
        listen,
        *,
        processes: int,
        server_kwargs: dict | None = None,
        registrations=(),
        threads: int = 1,
        window: int = DEFAULT_WINDOW,
        store: str | None = None,
        mode: str = "fds",
        replicas: int = 64,
        max_respawns: int = 5,
    ) -> None:
        if processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        if mode not in ("fds", "reuseport"):
            raise ValueError(f"mode must be 'fds' or 'reuseport', got {mode!r}")
        self.kind, self._addr = parse_address(listen)
        if mode == "reuseport" and self.kind != "tcp":
            raise ValueError("reuseport mode needs a TCP listen address")
        self.processes = int(processes)
        self.mode = mode
        self.threads = max(1, int(threads))
        self.window = max(1, int(window))
        self.replicas = int(replicas)
        self.max_respawns = int(max_respawns)
        self.store_base = store
        self.run_id = new_run_id()
        self._server_kwargs = dict(server_kwargs or {})
        self._dir = tempfile.mkdtemp(prefix="fastbns-plane-")
        self._internal_paths = [
            os.path.join(self._dir, f"w{k}.sock") for k in range(self.processes)
        ]
        self._lock = threading.Lock()
        # Registration replay list for respawned workers: spawn-time
        # pairs plus everything workers report registered in-stream.
        self._registrations: dict[str, object] = dict(registrations)
        self._workers = [_Worker(index=k) for k in range(self.processes)]
        self._listener: socket.socket | None = None
        self._reserve: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._monitor_thread: threading.Thread | None = None
        self._stopping = threading.Event()
        self._drained = threading.Event()
        self._started = False
        self._shutdown_doc: dict | None = None
        self._collected: list[dict | None] | None = None
        self._created = time.time()
        self.address: object = None
        self.n_connections = 0
        self.n_respawns = 0
        self.n_responses = 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        if self.kind == "unix":
            return f"unix:{self.address}"
        host, port = self.address
        return f"{host}:{port}"

    def worker_pid(self, index: int) -> int:
        """Current pid of worker ``index`` (changes after a respawn).

        Fault drills use this to aim a SIGKILL at the worker owning a
        given fingerprint; production code never needs it.
        """
        return self._workers[index].pid

    def start(self, *, ready_timeout: float = 60.0) -> "ProcessPlane":
        if self._started:
            raise RuntimeError("plane already started")
        self._started = True
        # Pre-import the full serving stack before any fork: initial
        # workers get warm modules for free, and respawn forks (taken
        # from a now-threaded router) never touch the import machinery.
        from ..core import learn as _learn  # noqa: F401
        from ..parallel import adaptive as _adaptive  # noqa: F401
        from ..parallel import backends as _backends  # noqa: F401
        from ..parallel import ci_level as _ci_level  # noqa: F401

        if self.mode == "reuseport":
            host, port = self._addr
            self._reserve = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._reserve.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            self._reserve.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            # Bound but never listening: holds the port reservation (so
            # an ephemeral port 0 resolves once, here) while the kernel
            # balances accepts over the workers' listening sockets only.
            self._reserve.bind((host, port))
            self.address = self._reserve.getsockname()[:2]
        elif self.kind == "unix":
            from .transport import _reclaim_stale_unix_socket

            _reclaim_stale_unix_socket(self._addr)
            self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._listener.bind(self._addr)
            self._listener.listen(128)
            self.address = self._addr
        else:
            host, port = self._addr
            self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            self._listener.bind((host, port))
            self._listener.listen(128)
            self.address = self._listener.getsockname()[:2]

        for worker in self._workers:
            self._spawn(worker)
        deadline = time.monotonic() + ready_timeout
        for worker in self._workers:
            if not worker.ready.wait(max(0.0, deadline - time.monotonic())):
                self.shutdown(drain=False)
                raise RuntimeError(f"serve worker {worker.index} never became ready")

        if self._listener is not None:
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="plane-router-accept", daemon=True
            )
            self._accept_thread.start()
        self._monitor_thread = threading.Thread(
            target=self._monitor, name="plane-router-monitor", daemon=True
        )
        self._monitor_thread.start()
        return self

    def _worker_config(self, index: int) -> _WorkerConfig:
        with self._lock:
            registrations = list(self._registrations.items())
        return _WorkerConfig(
            index=index,
            n_workers=self.processes,
            internal_paths=self._internal_paths,
            registrations=registrations,
            server_kwargs=dict(self._server_kwargs),
            threads=self.threads,
            window=self.window,
            mode=self.mode,
            store_base=self.store_base,
            run_base=self.run_id,
            replicas=self.replicas,
            tcp_bind=tuple(self.address) if self.mode == "reuseport" else None,
        )

    def _spawn(self, worker: _Worker) -> None:
        """Fork one serve worker and wire its control channel.

        ``SOCK_SEQPACKET`` keeps message boundaries, which
        ``send_fds``/``recv_fds`` need — on a byte stream two coalesced
        messages could mis-deliver an fd.
        """
        cfg = self._worker_config(worker.index)
        parent_sock, child_sock = socket.socketpair(
            socket.AF_UNIX, socket.SOCK_SEQPACKET
        )
        # Snapshot before fork: fds the child must close so it cannot
        # keep the router's sockets alive past the router's exit.
        inherited = [self._listener, self._reserve] + [
            w.control for w in self._workers if w.control is not None
        ]
        pid = os.fork()
        if pid == 0:
            code = 1
            try:
                parent_sock.close()
                for sock in inherited:
                    if sock is not None:
                        try:
                            sock.close()
                        except OSError:
                            pass
                code = _worker_main(cfg, child_sock)
            except BaseException as exc:
                traceback.print_exc()
                print(
                    f"plane: worker {cfg.index} died in startup/serve: {exc!r}",
                    file=sys.stderr,
                )
            finally:
                # Never run the router's atexit hooks / finalizers in
                # the child.
                os._exit(code)
        child_sock.close()
        worker.pid = pid
        worker.control = parent_sock
        worker.ready = threading.Event()
        worker.drained = threading.Event()
        worker.drain_doc = {}
        worker.alive = True
        worker.reader = threading.Thread(
            target=self._reader,
            args=(worker,),
            name=f"plane-router-reader-{worker.index}",
            daemon=True,
        )
        worker.reader.start()

    # ------------------------------------------------------------------ #
    # router threads
    # ------------------------------------------------------------------ #
    def _reader(self, worker: _Worker) -> None:
        """Drain one worker's control notifications until EOF."""
        sock = worker.control
        while True:
            try:
                data = sock.recv(_CTL_BUF)
            except OSError:
                return
            if not data:
                return
            try:
                doc = json.loads(data)
            except ValueError:
                continue
            kind = doc.get("kind")
            if kind == "ready":
                worker.ready.set()
            elif kind == "drained":
                worker.drain_doc = doc
                worker.drained.set()
            elif kind == "registered":
                ds_id, spec = doc.get("dataset"), doc.get("spec")
                if isinstance(ds_id, str) and spec is not None:
                    with self._lock:
                        self._registrations[ds_id] = spec
            elif kind == "closed":
                if doc.get("unregister") and isinstance(doc.get("dataset"), str):
                    with self._lock:
                        self._registrations.pop(doc["dataset"], None)
            elif kind == "register-failed":
                print(
                    f"plane: worker {doc.get('worker')} failed to register "
                    f"{doc.get('dataset')!r}: {doc.get('message')}",
                    file=sys.stderr,
                )

    def _accept_loop(self) -> None:
        """fd mode: accept and hand each connection to a live worker."""
        try:
            self._listener.settimeout(0.2)
        except OSError:
            return  # shutdown won the race
        rr = 0
        while not self._stopping.is_set():
            try:
                sock, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed by shutdown()
            delivered = False
            for attempt in range(self.processes):
                worker = self._workers[(rr + attempt) % self.processes]
                if not worker.alive or not worker.ready.is_set():
                    continue
                try:
                    socket.send_fds(
                        worker.control, [b'{"kind": "conn"}'], [sock.fileno()]
                    )
                except OSError:
                    continue
                rr = (rr + attempt + 1) % self.processes
                delivered = True
                break
            # send_fds dup'd the descriptor into the worker; the router's
            # copy closes either way.  An undeliverable connection (all
            # workers down) reads as immediate EOF at the client.
            sock.close()
            if delivered:
                self.n_connections += 1

    def _monitor(self) -> None:
        """Reap dead workers and respawn them under the same identity."""
        while not self._stopping.is_set():
            time.sleep(0.2)
            for worker in self._workers:
                if not worker.alive or self._stopping.is_set():
                    continue
                try:
                    pid, _status = os.waitpid(worker.pid, os.WNOHANG)
                except (ChildProcessError, OSError):
                    pid = worker.pid  # already reaped elsewhere: treat as dead
                if pid == 0:
                    continue
                if worker.respawns >= self.max_respawns:
                    worker.alive = False
                    print(
                        f"plane: worker {worker.index} died and exhausted "
                        f"{self.max_respawns} respawns; leaving it down",
                        file=sys.stderr,
                    )
                    continue
                worker.respawns += 1
                self.n_respawns += 1
                try:
                    worker.control.close()
                except OSError:
                    pass
                self._spawn(worker)
                worker.ready.wait(60.0)

    # ------------------------------------------------------------------ #
    # control-channel helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _send_ctl(worker: _Worker, doc: dict) -> bool:
        try:
            worker.control.send(json.dumps(doc).encode("utf-8"))
            return True
        except OSError:
            return False

    def wait(self, timeout: float | None = None) -> bool:
        """Block until :meth:`shutdown` completes (signal-interruptible)."""
        deadline = None if timeout is None else (time.monotonic() + timeout)
        while True:
            if self._drained.wait(0.2):
                return True
            if deadline is not None and time.monotonic() >= deadline:
                return False

    def note_shutdown(
        self, reason: str, *, drained: bool = True, signum: int | None = None
    ) -> None:
        """Record how the run ended; surfaces in the merged manifest."""
        self._shutdown_doc = shutdown_doc(reason, drained=drained, signum=signum)

    # ------------------------------------------------------------------ #
    # manifest merge
    # ------------------------------------------------------------------ #
    def _collect_manifests(self) -> list[dict | None]:
        """One run document per worker, fetched over the internal plane.

        The ``manifest`` admin op rides the stream protocol (framed
        lines, no SEQPACKET message-size cliff) and is a dispatch
        barrier, so by the time it answers every request the worker
        accepted is accounted.
        """
        docs: list[dict | None] = []
        for worker in self._workers:
            doc = None
            if worker.alive:
                try:
                    with EngineClient(
                        f"unix:{self._internal_paths[worker.index]}", timeout=60.0
                    ) as client:
                        resp = client.request({"op": "manifest"})
                    doc = resp["result"] if resp.get("error") is None else None
                except (OSError, ValueError, KeyError):
                    doc = None  # worker died mid-collection; counted below
            docs.append(doc)
        return docs

    def manifest(self) -> dict:
        """The merged run document spanning every worker.

        Totals are the exact sum of the per-worker manifest totals
        (:func:`~repro.engine.manifest.merge_totals`) — which already
        fold in journal-recovered predecessors and each worker's
        unrouted (including forward-failure) rows.
        """
        docs = self._collected
        if docs is None:
            docs = self._collect_manifests()
        workers_out = []
        for worker, doc in zip(self._workers, docs):
            workers_out.append(
                {
                    "worker": worker.index,
                    "run_id": f"{self.run_id}.w{worker.index}",
                    "store": (
                        None
                        if self.store_base is None
                        else f"{self.store_base}.w{worker.index}"
                    ),
                    "alive": worker.alive,
                    "respawns": worker.respawns,
                    "n_responses": worker.drain_doc.get("n_responses"),
                    "manifest": doc,
                }
            )
        totals = merge_totals(
            [d["manifest"]["totals"] for d in workers_out if d["manifest"] is not None]
        )
        return {
            "manifest_version": MANIFEST_VERSION,
            "created_unix": self._created,
            "run_id": self.run_id,
            "processes": self.processes,
            "router": {
                "mode": self.mode,
                "listen": self.describe(),
                "n_connections": self.n_connections,
                "n_respawns": self.n_respawns,
                "shutdown": dict(self._shutdown_doc) if self._shutdown_doc else None,
            },
            "totals": totals,
            "workers": workers_out,
        }

    def write_manifest(self, path) -> None:
        from pathlib import Path

        Path(path).write_text(json.dumps(self.manifest(), indent=2) + "\n")

    # ------------------------------------------------------------------ #
    # shutdown
    # ------------------------------------------------------------------ #
    def shutdown(self, *, drain: bool = True, timeout: float | None = None) -> None:
        """Stop accepting, drain workers, merge manifests; idempotent.

        The two-phase drain: (1) every worker ends its client
        connections at line boundaries — internal listeners stay up so
        in-flight cross-worker forwards complete; (2) the router
        collects per-worker manifests over the internal sockets, then
        sends ``exit`` and reaps.  ``drain=False`` skips phase one.
        """
        if self._drained.is_set():
            return
        timeout = self.DRAIN_TIMEOUT_S if timeout is None else timeout
        self._stopping.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=10.0)
        if self._monitor_thread is not None:
            self._monitor_thread.join(timeout=10.0)

        live = [w for w in self._workers if w.alive]
        if drain:
            for worker in live:
                self._send_ctl(worker, {"kind": "drain"})
            deadline = time.monotonic() + timeout
            for worker in live:
                worker.drained.wait(max(0.0, deadline - time.monotonic()))
            self.n_responses = sum(
                int(w.drain_doc.get("n_responses") or 0) for w in self._workers
            )
            self._collected = self._collect_manifests()
        else:
            self._collected = [None] * self.processes

        for worker in live:
            self._send_ctl(worker, {"kind": "exit"})
        deadline = time.monotonic() + timeout
        for worker in self._workers:
            if worker.pid:
                self._reap(worker, deadline)
            if worker.control is not None:
                try:
                    worker.control.close()
                except OSError:
                    pass

        if self._reserve is not None:
            try:
                self._reserve.close()
            except OSError:
                pass
        if self.kind == "unix":
            try:
                os.unlink(self._addr)
            except OSError:
                pass
        for path in self._internal_paths:
            try:
                os.unlink(path)
            except OSError:
                pass
        try:
            os.rmdir(self._dir)
        except OSError:
            pass
        self._drained.set()

    @staticmethod
    def _reap(worker: _Worker, deadline: float) -> None:
        """Wait a worker out, escalating SIGTERM -> SIGKILL past the
        deadline (workers ignore SIGTERM by design, so the escalation
        path ends in SIGKILL — a drained worker never needs either)."""
        term_sent = False
        while True:
            try:
                pid, _status = os.waitpid(worker.pid, os.WNOHANG)
            except (ChildProcessError, OSError):
                return  # already reaped
            if pid != 0:
                return
            now = time.monotonic()
            if now >= deadline + 5.0:
                sig = signal.SIGKILL
            elif now >= deadline:
                sig = signal.SIGTERM if not term_sent else None
                term_sent = True
            else:
                sig = None
            if sig is not None:
                try:
                    os.kill(worker.pid, sig)
                except OSError:
                    return
            time.sleep(0.05)

    def __enter__(self) -> "ProcessPlane":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "drained" if self._drained.is_set() else (
            "started" if self._started else "new"
        )
        return (
            f"ProcessPlane(processes={self.processes}, mode={self.mode}, "
            f"{state}, respawns={self.n_respawns})"
        )
