"""Persistent learning sessions.

A :class:`LearningSession` turns structure learning from a one-shot script
into a long-lived service object.  It owns, for exactly one dataset:

* the encoded :class:`~repro.datasets.dataset.DiscreteDataset` (coerced to
  the Fast-BNS variable-major layout once, up front);
* one :class:`~repro.engine.statscache.SufficientStatsCache` shared by
  every tester the session hands out — a ``relearn(alpha=...)`` or a
  Markov-blanket query after a ``learn()`` answers most of its CI tests
  from cached tables instead of re-scanning ``m`` samples per test;
* a long-lived :class:`~repro.parallel.backends.WorkerPool` (when
  ``n_jobs > 1``) whose per-process caches likewise persist across calls —
  the seed code paid a fresh pool spawn per ``learn_structure`` call.
  Workers receive the session's encoding layer through the zero-copy
  shared-memory plane (:mod:`repro.datasets.shm`) when the platform
  provides it, so session memory stays ``O(dataset)`` rather than
  ``O(n_jobs x dataset)``; the exported blocks live exactly as long as
  the pool — ``close()`` (and therefore ``with``-statement exit) unlinks
  them, with a finalizer backstop for crashed runs.

Successive calls are exact: cached tables are byte-identical to freshly
built ones (shared construction code), p-values are alpha-free so relearns
re-threshold rather than re-test, and the CI-level scheduler's output is
scheduling-order invariant.  ``learn()`` here equals
:func:`repro.core.learn.learn_structure` with ``method="fast-bns"`` on the
same inputs, bit for bit.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

import numpy as np

from ..citests.base import CITestCounters, ConditionalIndependenceTest
from ..core.learn import make_tester
from ..core.markov_blanket import MarkovBlanketResult, grow_shrink, iamb
from ..core.orientation import orient_skeleton
from ..core.result import LearnResult
from ..core.skeleton import learn_skeleton
from ..datasets.dataset import DiscreteDataset
from ..datasets.encoded import EncodedDataset
from .fingerprint import (
    dataset_fingerprint,
    engine_config_fingerprint,
    request_fingerprint,
)
from .statscache import DEFAULT_BUDGET_BYTES, CacheStats, SufficientStatsCache

__all__ = ["LearningSession"]


class LearningSession:
    """One dataset, one stats cache, one worker pool — many queries.

    Parameters
    ----------
    data:
        A :class:`DiscreteDataset` or a ``(n_samples, n_variables)`` array
        of category codes (``arities`` then optional, as in
        :func:`~repro.core.learn.learn_structure`).
    test, alpha, dof_adjust:
        Session defaults; every query may override ``alpha`` (and
        sequential queries may override ``test``) per call.
    n_jobs, backend:
        ``n_jobs > 1`` keeps a long-lived CI-level worker pool for the
        skeleton phase of ``learn()`` calls.  The pool is spawned lazily on
        the first parallel query and reused until :meth:`close`.
    cache_bytes:
        LRU byte budget of the session's stats cache; with ``n_jobs > 1``
        each worker process additionally keeps its own cache with the same
        budget (worker memory is per-process by design — no shared-table
        synchronisation, mirroring the paper's no-atomics property).
    use_shm:
        Dataset transport for process workers: ``None`` (default) attaches
        them to the session's encoding layer through the zero-copy
        shared-memory plane when available, falling back to pickling;
        ``True`` requires the plane, ``False`` forces the pickled path.
        Bit-identical results either way.
    store:
        Optional durable store (:class:`~repro.engine.store.EngineStore`
        or a database path, which the session then owns and closes).
        When present, ``learn()`` consults the store's skeleton-blob
        tier before running ``learn_skeleton`` — a restarted process
        resumes its learned structures without relearning — and the
        stats cache gains the store's spill tier: entries evicted from
        the in-memory byte budget land in SQLite and promote back on
        lookup.  Every store key carries the dataset and engine-config
        fingerprints, so reuse is exact: a mismatch is a miss, never a
        wrong answer.
    """

    def __init__(
        self,
        data: DiscreteDataset | np.ndarray,
        arities: Sequence[int] | None = None,
        *,
        test: str = "g2",
        alpha: float = 0.05,
        dof_adjust: str = "structural",
        n_jobs: int = 1,
        backend: str = "process",
        cache_bytes: int = DEFAULT_BUDGET_BYTES,
        use_shm: bool | None = None,
        store=None,
    ) -> None:
        if n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        if not 0 < alpha < 1:
            raise ValueError("alpha must be in (0, 1)")
        if isinstance(data, DiscreteDataset):
            self.dataset = data.with_layout("variable-major")
        else:
            self.dataset = DiscreteDataset.from_rows(
                np.asarray(data), arities=arities, layout="variable-major"
            )
        self.test = test
        self.alpha = float(alpha)
        self.dof_adjust = dof_adjust
        self.n_jobs = int(n_jobs)
        self.backend = backend
        self.use_shm = use_shm
        self.cache_bytes = int(cache_bytes)
        # A path means the session owns (and closes) the store; a handed
        # EngineStore belongs to the caller (the server shares one store
        # across every session it spins up).
        from .store import EngineStore

        self._owns_store = store is not None and not isinstance(store, EngineStore)
        self.store = EngineStore.ensure(store)
        self.n_skeleton_learns = 0
        self.n_skeleton_loads = 0
        #: Failed best-effort pool teardowns after a worker crash.
        self.n_pool_shutdown_errors = 0
        self._fingerprint: str | None = None
        spill = None
        if self.store is not None:
            # Fingerprint eagerly: every store key needs it, and the
            # spill tier is namespaced by it.
            spill = self.store.spill_tier(self.fingerprint)
        self.cache = SufficientStatsCache(max_bytes=cache_bytes, spill=spill)
        # One encoding layer shared by every tester the session hands out
        # (and shipped to workers at pool start): columns are widened and
        # endpoint pairs encoded once per dataset, not once per tester.
        self.encoded = EncodedDataset(self.dataset)
        self._testers: dict[tuple[str, float, str], ConditionalIndependenceTest] = {}
        self._pool = None
        self._closed = False

    # ------------------------------------------------------------------ #
    # identity & introspection
    # ------------------------------------------------------------------ #
    @property
    def fingerprint(self) -> str:
        """Content fingerprint of the session's dataset (lazy, cached)."""
        if self._fingerprint is None:
            self._fingerprint = dataset_fingerprint(self.dataset)
        return self._fingerprint

    @property
    def names(self) -> tuple[str, ...]:
        return self.dataset.names

    @property
    def n_variables(self) -> int:
        return self.dataset.n_variables

    def cache_stats(self) -> CacheStats:
        """Exact counters of the session-local (master) stats cache."""
        return self.cache.stats()

    def worker_cache_stats(self) -> list[dict]:
        """Per-worker cache snapshots, when a process pool is live."""
        if self._pool is None:
            return []
        return self._pool.cache_stats()

    def counters(self) -> CITestCounters:
        """Aggregate CI-test counters over every tester the session built."""
        total = CITestCounters()
        for tester in self._testers.values():
            c = tester.counters
            total.n_tests += c.n_tests
            total.data_accesses += c.data_accesses
            total.table_cells += c.table_cells
            total.log_ops += c.log_ops
            total.cache_hits += c.cache_hits
            total.cache_misses += c.cache_misses
            for depth, n in c.per_depth_tests.items():
                total.per_depth_tests[depth] = total.per_depth_tests.get(depth, 0) + n
        return total

    # ------------------------------------------------------------------ #
    # testers & pool
    # ------------------------------------------------------------------ #
    def tester(
        self,
        test: str | None = None,
        alpha: float | None = None,
        dof_adjust: str | None = None,
    ) -> ConditionalIndependenceTest:
        """A tester over the session dataset sharing the session cache.

        Testers are memoized per ``(test, alpha, dof_adjust)``; all of them
        read and write the *same* stats cache, which is what makes a
        relearn at a new alpha nearly table-free.
        """
        self._check_open()
        key = (
            test or self.test,
            float(alpha if alpha is not None else self.alpha),
            dof_adjust or self.dof_adjust,
        )
        tester = self._testers.get(key)
        if tester is None:
            tester = make_tester(
                self.dataset,
                key[0],
                alpha=key[1],
                dof_adjust=key[2],
                stats_cache=self.cache,
                encoded=self.encoded,
            )
            self._testers[key] = tester
        return tester

    def _skeleton_key(self, test: str | None, alpha: float, gs, max_depth) -> tuple[str, str]:
        """Store key of one skeleton run plus its engine-config lineage.

        Every result-affecting knob participates as spelled (``gs="auto"``
        and a fixed gs key separately even though their skeletons are
        bit-identical — the conservative choice the result cache already
        makes), so a store hit can only ever be the exact artifact an
        identical run computed.
        """
        cfg = {"test": test or self.test, "dof_adjust": self.dof_adjust}
        config_fp = engine_config_fingerprint(cfg)
        key = request_fingerprint(
            self.fingerprint,
            "skeleton",
            {**cfg, "alpha": alpha, "gs": gs, "max_depth": max_depth},
        )
        return key, config_fp

    def _ensure_pool(self):
        if self._pool is None:
            from ..parallel.adaptive import DEFAULT_SEED_GS
            from ..parallel.backends import WorkerPool

            # Long-lived pool: prewarm each worker's kernel arena for the
            # default adaptive seed group size (later learns at larger gs
            # just grow the buffers once to the new high-water mark).
            n = min(DEFAULT_SEED_GS * 4 * max(self.dataset.n_samples, 1), 1 << 24)
            self._pool = WorkerPool(
                self.dataset,
                self.n_jobs,
                backend=self.backend,
                test=self.test,
                alpha=self.alpha,
                dof_adjust=self.dof_adjust,
                cache_bytes=self.cache_bytes,
                encoded=self.encoded,
                use_shm=self.use_shm,
                arena_hint={"cells": (n, "<i4"), "xygather": (n, "<i4")},
            )
        return self._pool

    @property
    def uses_shm(self) -> bool:
        """True while a live worker pool serves from the shared plane."""
        return self._pool is not None and self._pool.uses_shm

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def learn(
        self,
        *,
        alpha: float | None = None,
        test: str | None = None,
        gs: int | str = 1,
        max_depth: int | None = None,
        apply_r4: bool = False,
        v_structures: str = "standard",
    ) -> LearnResult:
        """Learn a CPDAG (Fast-BNS semantics) reusing session state.

        A ``test`` override forces the sequential path even when the
        session holds a pool (workers are initialised for the session's
        test); ``alpha`` overrides ride the pool exactly, since p-values
        are alpha-free.  ``gs="auto"`` sizes CI-test groups adaptively on
        the parallel path (fixed fallback sequentially) — bit-identical
        results either way.
        """
        self._check_open()
        alpha = float(alpha if alpha is not None else self.alpha)
        # The parallel path never builds a tester (workers re-threshold
        # cached p-values), so validate here or a bad alpha would silently
        # turn every verdict into "dependent".
        if not 0 < alpha < 1:
            raise ValueError("alpha must be in (0, 1)")
        n_nodes = self.dataset.n_variables

        t0 = time.perf_counter()
        skel_key = config_fp = None
        restored = None
        if self.store is not None:
            skel_key, config_fp = self._skeleton_key(test, alpha, gs, max_depth)
            restored = self.store.get_skeleton(skel_key)
        if restored is not None:
            # Warm path: the exact (skeleton, sepsets, stats) a previous
            # run computed for this fingerprint — orientation below still
            # runs live (it is cheap and parameter-dependent).
            skeleton, sepsets, stats = restored
            self.n_skeleton_loads += 1
        elif self.n_jobs > 1 and (test is None or test == self.test):
            from concurrent.futures import BrokenExecutor

            from ..parallel.ci_level import ci_level_skeleton

            pool = self._ensure_pool()
            try:
                skeleton, sepsets, stats = ci_level_skeleton(
                    pool,
                    n_nodes,
                    gs=gs,
                    group_endpoints=True,
                    max_depth=max_depth,
                    n_samples=self.dataset.n_samples,
                    alpha_override=None if alpha == pool.alpha else alpha,
                )
            except BrokenExecutor:
                # A worker died mid-learn (killed, OOM).  Drop the pool —
                # shutdown unlinks its shm plane — so the next learn
                # respawns a fresh one, and let the error surface as this
                # request's clean failure.
                self._pool = None
                try:
                    pool.shutdown()
                except Exception:
                    # Teardown of an already-broken pool is best-effort;
                    # the counter keeps the failure auditable.
                    self.n_pool_shutdown_errors += 1
                raise
        else:
            from ..parallel.adaptive import resolve_fixed_gs

            skeleton, sepsets, stats = learn_skeleton(
                self.tester(test, alpha),
                n_nodes,
                gs=resolve_fixed_gs(gs),
                group_endpoints=True,
                onthefly=True,
                max_depth=max_depth,
            )
        if restored is None:
            self.n_skeleton_learns += 1
            if self.store is not None:
                self.store.put_skeleton(
                    skel_key, self.fingerprint, config_fp, (skeleton, sepsets, stats)
                )
        t1 = time.perf_counter()
        if v_structures == "standard":
            cpdag = orient_skeleton(skeleton, sepsets, apply_r4=apply_r4)
        else:
            from ..core.conservative import orient_skeleton_robust

            cpdag, _classification = orient_skeleton_robust(
                self.tester(test, alpha), skeleton, sepsets, rule=v_structures, apply_r4=apply_r4
            )
        t2 = time.perf_counter()
        return LearnResult(
            cpdag=cpdag,
            skeleton=skeleton,
            sepsets=sepsets,
            stats=stats,
            names=self.dataset.names,
            elapsed={"skeleton": t1 - t0, "orientation": t2 - t1, "total": t2 - t0},
        )

    def relearn(self, **overrides) -> LearnResult:
        """Alias of :meth:`learn` for the warm-path reading of the code:
        the second call with different parameters is where the session's
        caches pay off."""
        return self.learn(**overrides)

    def markov_blanket(
        self,
        target: int | str,
        algorithm: str = "iamb",
        alpha: float | None = None,
        max_conditioning: int | None = 3,
    ) -> MarkovBlanketResult:
        """Discover one variable's Markov blanket on the session substrate.

        Blanket queries are prime cache traffic: the grow phase sweeps
        every candidate against the *same* conditioning set (one encoding,
        many endpoints) and the shrink phase tests subsets of tuples the
        grow phase already built (served by marginalization).
        """
        self._check_open()
        if algorithm not in ("iamb", "grow-shrink"):
            raise ValueError("algorithm must be 'iamb' or 'grow-shrink'")
        if isinstance(target, str):
            target = self.dataset.index_of(target)
        fn = iamb if algorithm == "iamb" else grow_shrink
        return fn(
            self.tester(None, alpha),
            self.dataset.n_variables,
            int(target),
            max_conditioning=max_conditioning,
        )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran (the server's eviction check)."""
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("session is closed")

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self._owns_store and self.store is not None:
            self.store.close()
        self._closed = True

    def __enter__(self) -> "LearningSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LearningSession(n_variables={self.dataset.n_variables}, "
            f"n_samples={self.dataset.n_samples}, test={self.test!r}, "
            f"n_jobs={self.n_jobs}, cache_bytes={self.cache_bytes})"
        )
