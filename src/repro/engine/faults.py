"""Injectable failure hooks for fault drills.

Production code calls :func:`injector.fire` at a handful of named fault
sites (e.g. ``"shm.export"`` in the dataset transport policy).  In
normal operation every site is disarmed and ``fire`` is a no-op costing
one dict lookup.  Tests arm a site with an exception — optionally for a
bounded number of firings — and drive the real code path: the drill
exercises the production error handling, not a mock of it.

The contract for every fault site:

* firing raises inside the *request being served*, never inside the
  dispatcher — the engine converts it to a uniform error response;
* the stream keeps draining, manifests stay exact, and once the site is
  disarmed the next request succeeds (recovery is part of the drill).

Process-level faults (killing a pool worker) are genuine OS signals,
not injections — helpers for those live here too so drills share one
vocabulary.
"""

from __future__ import annotations

import os
import signal
import threading
from contextlib import contextmanager

__all__ = [
    "FaultInjector",
    "injector",
    "shm_enospc",
    "pool_worker_pids",
    "kill_one_worker",
]


class FaultInjector:
    """Registry of armed fault sites; thread-safe."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._armed: dict[str, dict] = {}

    def arm(self, site: str, exc, *, times: int | None = 1) -> None:
        """Arm ``site`` to raise ``exc`` on the next ``times`` firings.

        ``exc`` is an exception instance or a zero-arg factory returning
        one.  ``times=None`` keeps the site armed until :meth:`clear`.
        """
        if not isinstance(site, str) or not site:
            raise ValueError(f"fault site must be a non-empty string, got {site!r}")
        if times is not None and int(times) < 1:
            raise ValueError(f"times must be >= 1 or None, got {times!r}")
        with self._lock:
            self._armed[site] = {
                "exc": exc,
                "left": None if times is None else int(times),
            }

    def fire(self, site: str) -> None:
        """Raise at ``site`` if armed; no-op otherwise."""
        with self._lock:
            entry = self._armed.get(site)
            if entry is None:
                return
            if entry["left"] is not None:
                entry["left"] -= 1
                if entry["left"] <= 0:
                    del self._armed[site]
            exc = entry["exc"]
        raise exc() if callable(exc) else exc

    def armed(self, site: str) -> bool:
        with self._lock:
            return site in self._armed

    def clear(self, site: str | None = None) -> None:
        """Disarm one site, or every site when ``site`` is None."""
        with self._lock:
            if site is None:
                self._armed.clear()
            else:
                self._armed.pop(site, None)


#: Process-wide injector all production fault sites consult.
injector = FaultInjector()


@contextmanager
def shm_enospc(times: int | None = None):
    """Arm the ``shm.export`` site with ENOSPC for the enclosed block.

    Any shared-memory dataset export inside the block fails as if
    ``/dev/shm`` were full.  Sessions with ``use_shm=None`` (auto) fall
    back to pickled transport; ``use_shm=True`` surfaces the OSError as
    a clean error response.  Always disarms on exit.
    """

    def _enospc() -> OSError:
        return OSError(28, "No space left on device (fault-injected)")

    injector.arm("shm.export", _enospc, times=times)
    try:
        yield injector
    finally:
        injector.clear("shm.export")


def pool_worker_pids(session) -> list[int]:
    """PIDs of a session's live process-pool workers ([] for threads)."""
    pool = getattr(session, "_pool", None)
    executor = getattr(pool, "_executor", None)
    processes = getattr(executor, "_processes", None)
    if not processes:
        return []
    return sorted(processes.keys())


def kill_one_worker(session) -> int | None:
    """SIGKILL one pool worker of ``session``; returns the PID or None.

    The next parallel learn on the session observes a broken executor;
    the engine must turn that into a clean error response and respawn
    the pool on the request after."""
    pids = pool_worker_pids(session)
    if not pids:
        return None
    os.kill(pids[0], signal.SIGKILL)
    return pids[0]
