"""Per-run manifests for batch serving.

A batch run is a first-class artifact: the manifest records what was asked
(request fingerprints), what was actually computed versus served from the
result cache, how long each request took, and the exact state of the
engine's caches at the end — enough to audit a run, diff two runs, or
reproduce one (the dataset fingerprint pins the inputs).  Written as a
single JSON document next to the results file by ``fastbns batch``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterable, Mapping

__all__ = ["RunManifest", "merge_totals", "shutdown_doc", "recovered_manifest_doc"]

MANIFEST_VERSION = 1


@dataclass
class RunManifest:
    """Everything needed to account for one batch-serving run.

    ``journal`` is an optional durable sink (a
    :class:`~repro.engine.store.ManifestJournal`): when set, every row
    appended here is *also* written through to the store the moment its
    response exists, so a crash mid-stream leaves an exact audit trail
    instead of losing the write-at-exit JSON document.
    """

    dataset_fingerprint: str
    engine: dict = field(default_factory=dict)
    requests: list[dict] = field(default_factory=list)
    created_unix: float = field(default_factory=time.time)
    journal: object | None = field(default=None, repr=False, compare=False)

    def add_request(
        self,
        op: str | None,
        fingerprint: str | None,
        cached: bool,
        elapsed_s: float,
        error: str | None = None,
    ) -> None:
        # Both clocks, deliberately: t_wall anchors the row in real time,
        # t_mono makes rows replay-orderable within the process even
        # across wall-clock adjustments (NTP steps, DST) — the durable
        # journal needs an order that cannot run backwards.
        entry = {
            "op": op,
            "fingerprint": fingerprint,
            "cached": bool(cached),
            "elapsed_s": float(elapsed_s),
            "t_wall": time.time(),
            "t_mono": time.monotonic(),
        }
        if error is not None:
            entry["error"] = error
        self.requests.append(entry)
        if self.journal is not None:
            self.journal.append(
                {
                    "kind": "request",
                    "dataset_fingerprint": self.dataset_fingerprint,
                    **entry,
                }
            )

    # ------------------------------------------------------------------ #
    # rollups & serialisation
    # ------------------------------------------------------------------ #
    def totals(self) -> dict:
        n = len(self.requests)
        cached = sum(1 for r in self.requests if r["cached"])
        errors = sum(1 for r in self.requests if "error" in r)
        return {
            "n_requests": n,
            "n_computed": n - cached - errors,
            "n_result_cache_hits": cached,
            "n_errors": errors,
            "elapsed_s": sum(r["elapsed_s"] for r in self.requests),
        }

    def to_dict(self, cache_stats: Mapping | None = None) -> dict:
        out = {
            "manifest_version": MANIFEST_VERSION,
            "created_unix": self.created_unix,
            "dataset_fingerprint": self.dataset_fingerprint,
            "engine": dict(self.engine),
            "totals": self.totals(),
            "requests": list(self.requests),
        }
        if cache_stats is not None:
            out["stats_cache"] = dict(cache_stats)
        return out

    def write(self, path: str | Path, cache_stats: Mapping | None = None) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(cache_stats), indent=2) + "\n")
        return path


def merge_totals(totals: Iterable[Mapping]) -> dict:
    """Sum per-manifest request rollups into one document.

    The multi-dataset :class:`~repro.engine.server.EngineServer` keeps one
    manifest per session (live or already evicted); its run-level totals
    are the exact sum of the per-session ones plus the unrouted-error log,
    which this helper computes so the two views cannot drift.
    """
    out = {
        "n_requests": 0,
        "n_computed": 0,
        "n_result_cache_hits": 0,
        "n_errors": 0,
        "elapsed_s": 0.0,
    }
    for t in totals:
        for key in out:
            out[key] += t[key]
    return out


def recovered_manifest_doc(journal_rows: Iterable[Mapping]) -> dict | None:
    """Rebuild a retired-manifest-style doc from durable journal rows.

    A SIGKILLed server loses its in-memory manifests, but every row it
    served is already in the store journal (write-through on response).
    The process plane uses this when it respawns a worker under the same
    run id: the predecessor's journalled request rows become one
    synthetic retired-session doc folded into the successor's run
    document (``EngineServer.manifest_extras``), so merged run totals
    still count every served request exactly once.  Returns ``None``
    when the rows contain no request entries (nothing to recover).
    """
    requests = [
        dict(row) for row in journal_rows if row.get("kind") == "request"
    ]
    if not requests:
        return None
    n = len(requests)
    cached = sum(1 for r in requests if r.get("cached"))
    errors = sum(1 for r in requests if r.get("error") is not None)
    return {
        "manifest_version": MANIFEST_VERSION,
        "dataset_fingerprint": "",
        "engine": {"role": "recovered-from-journal"},
        "totals": {
            "n_requests": n,
            "n_computed": n - cached - errors,
            "n_result_cache_hits": cached,
            "n_errors": errors,
            "elapsed_s": sum(float(r.get("elapsed_s", 0.0)) for r in requests),
        },
        "requests": requests,
        "live": False,
        "evicted": False,
        "recovered": True,
    }


def shutdown_doc(
    reason: str, *, drained: bool = True, signum: int | None = None
) -> dict:
    """Drain accounting for an interrupted run.

    A manifest written after SIGINT/SIGTERM (or a consumer that hung up
    mid-stream) must say so — otherwise a truncated run is
    indistinguishable from a complete one.  ``drained`` records whether
    in-flight requests were allowed to finish before the manifest was
    written (the CLI and socket transport always drain; a hard kill
    never writes this document at all).
    """
    return {
        "reason": str(reason),
        "drained": bool(drained),
        "signum": None if signum is None else int(signum),
        "unix_time": time.time(),
        "mono_time": time.monotonic(),
    }
