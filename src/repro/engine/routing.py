"""Routing and placement primitives shared by every serve plane.

Two serving layers need to answer the same two questions — *which stream
of work does this request belong to* and *who should serve that stream* —
and they must answer them identically or the engine's determinism
guarantees fall apart:

* the in-process dispatcher (:meth:`EngineServer.serve_iter
  <repro.engine.server.EngineServer.serve_iter>`, ``--threads``) keys a
  dispatch **lane** per resolved dataset content fingerprint and picks
  ready lanes with a weighted deficit-round-robin scheduler;
* the multi-process plane (:mod:`repro.engine.procserve`,
  ``--processes``) places each fingerprint on exactly one worker process
  with a consistent-hash ring, so aliased dataset ids naming
  byte-identical data land on the same worker — preserving the same
  per-lane serialisation (and therefore ``cached`` accounting) across
  process boundaries.

This module holds the shared pieces: :class:`Pending` (one in-flight
streamed request), :class:`LaneScheduler` (the DRR pick), and
:class:`HashRing` (fingerprint -> worker placement).  Keying both layers
by the *content fingerprint* — never the raw ``dataset`` tag — is the
invariant that makes a multi-process run's per-lane behaviour match the
single-process run's.
"""

from __future__ import annotations

import hashlib
import threading
from bisect import bisect_right
from collections import deque
from collections.abc import Mapping

__all__ = [
    "Pending",
    "Lane",
    "LaneScheduler",
    "HashRing",
    "lane_label",
    "request_dataset_id",
]


def request_dataset_id(raw, default: str | None = None) -> str | None:
    """The dataset id a request routes by, or ``None`` when malformed.

    The single helper both the lane keyer and the process router use, so
    "which dataset does this request name" has exactly one definition:
    a non-mapping (including a :class:`~repro.engine.batch.ParseFailure`)
    or a non-string tag routes nowhere and is answered by whoever holds
    the stream.
    """
    if not isinstance(raw, Mapping):
        return None
    dataset_id = raw.get("dataset", default)
    return dataset_id if isinstance(dataset_id, str) else None


def lane_label(key: object) -> str:
    """Human/JSON-facing name of a lane key (fingerprints as-is)."""
    if key is None:
        return "malformed"
    if isinstance(key, tuple):
        return f"unresolved:{key[1]}"
    return str(key)


class Pending:
    """One in-flight streamed request: raw input plus its completion latch.

    Carries monotonic timestamps for the latency harness
    (:mod:`repro.engine.workload`): ``t_in`` when intake pulled the
    request, ``t_start`` when a worker picked it, ``t_done`` when its
    response was ready.  The wire response schema never changes — the
    timestamps travel through the optional ``timings`` list kwarg of
    :meth:`EngineServer.serve_iter
    <repro.engine.server.EngineServer.serve_iter>` instead.
    """

    __slots__ = ("raw", "response", "exc", "done", "lane", "t_in", "t_start", "t_done")

    def __init__(self, raw) -> None:
        self.raw = raw
        self.response: dict | None = None
        self.exc: BaseException | None = None
        self.done = threading.Event()
        self.lane: str = ""
        self.t_in = 0.0
        self.t_start = 0.0
        self.t_done = 0.0


class Lane:
    """One dispatch lane's scheduling state (guarded by the scheduler lock)."""

    __slots__ = ("key", "queue", "weight", "deficit", "busy", "in_ring", "visited")

    def __init__(self, key: object, weight: float) -> None:
        self.key = key
        self.queue: deque = deque()
        self.weight = float(weight)
        self.deficit = 0.0
        self.busy = False  # a worker is serving this lane right now
        self.in_ring = False  # queued in the DRR ring
        self.visited = False  # granted its quantum for the current ring visit


class LaneScheduler:
    """Deficit-round-robin pick over ready dispatch lanes.

    The dispatcher's fairness core: lanes enter a ring when they have
    queued requests and no worker serving them; each visit of the ring
    pointer grants the head lane ``weight`` units of credit, one unit
    buys one request, and a lane with credit keeps the head so weights
    above 1 serve bursts.  A lane without credit rotates away unserved —
    which is what bounds how long a cold lane can wait: with total ready
    weight ``W``, a lane of weight ``w`` gets at least ``~w/W`` of the
    contended picks, and every ready lane is visited once per rotation.
    A second, work-conserving pass ignores credit so a worker never
    idles while any lane is ready (weights shape order under contention,
    never throughput with capacity to spare).

    Per-lane serialisation is preserved: a busy lane is skipped (its
    banked credit intact), so per-session request order — and therefore
    result-cache accounting — still matches the sequential run.
    """

    #: Banked credit is capped at this multiple of ``max(1, weight)`` so a
    #: lane that stays ready but unpicked cannot hoard an unbounded burst.
    DEFICIT_CAP = 4.0

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._lanes: dict[object, Lane] = {}
        self._ring: deque = deque()  # lane keys in current visit order
        self._n_queued = 0
        self._closed = False

    def push(self, key: object, pending: Pending, weight: float = 1.0) -> None:
        with self._ready:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            lane = self._lanes.get(key)
            if lane is None:
                lane = self._lanes[key] = Lane(key, weight)
            elif weight > lane.weight:
                # Ids aliasing one fingerprint share a lane; the lane
                # serves at the strongest weight any of them configured.
                lane.weight = float(weight)
            lane.queue.append(pending)
            self._n_queued += 1
            if not lane.in_ring and not lane.busy:
                self._ring.append(key)
                lane.in_ring = True
                lane.visited = False
            self._ready.notify()

    def take(self) -> tuple[object, Pending] | None:
        """Block for the next ``(lane key, request)``; ``None`` once
        closed *and* every queued request has been handed out."""
        with self._ready:
            while True:
                picked = self._pick()
                if picked is not None:
                    self._n_queued -= 1
                    return picked
                if self._closed and self._n_queued == 0:
                    self._ready.notify()  # chain the exit wakeup to peers
                    return None
                # Timeout is lost-wakeup insurance, not a scheduling tick.
                self._ready.wait(0.2)

    def release(self, key: object) -> None:
        """A worker finished serving one request on ``key``'s lane."""
        with self._ready:
            lane = self._lanes[key]
            lane.busy = False
            if lane.queue:
                if not lane.in_ring:
                    self._ring.append(key)
                    lane.in_ring = True
                    lane.visited = False
            else:
                lane.deficit = 0.0  # no banking while idle (classic DRR)
            self._ready.notify()

    def close(self) -> None:
        """No more pushes; workers drain queued requests, then exit."""
        with self._ready:
            self._closed = True
            self._ready.notify_all()

    def _pick(self) -> tuple[object, Pending] | None:
        ring, lanes = self._ring, self._lanes
        # DRR pass: arriving at the head grants its quantum; credit >= 1
        # serves one request and keeps the head, otherwise rotate.
        for _ in range(len(ring)):
            if not ring:
                break
            lane = lanes[ring[0]]
            if not lane.queue:
                ring.popleft()
                lane.in_ring = False
                lane.visited = False
                lane.deficit = 0.0
                continue
            if lane.busy:
                # Per-lane serialisation: skip, credit intact.
                lane.visited = False
                ring.rotate(-1)
                continue
            if not lane.visited:
                lane.visited = True
                cap = self.DEFICIT_CAP * max(1.0, lane.weight)
                lane.deficit = min(cap, lane.deficit + lane.weight)
            if lane.deficit >= 1.0:
                lane.deficit -= 1.0
                return self._serve(lane)
            lane.visited = False
            ring.rotate(-1)
        # Work-conserving pass: no lane had credit (sub-unit weights all
        # round) — serve the first ready lane anyway rather than idle.
        for _ in range(len(ring)):
            lane = lanes[ring[0]]
            if lane.busy or not lane.queue:
                ring.rotate(-1)
                continue
            return self._serve(lane)
        return None

    def _serve(self, lane: Lane) -> tuple[object, Pending]:
        # Only ever called with `lane` at the ring head.
        lane.busy = True
        pending = lane.queue.popleft()
        if not lane.queue:
            self._ring.popleft()
            lane.in_ring = False
            lane.visited = False
            lane.deficit = 0.0
        return lane.key, pending


class HashRing:
    """Consistent-hash placement of dataset fingerprints on workers.

    The process plane's sharding rule: every worker contributes
    ``replicas`` pseudo-random points on a 64-bit circle, and a
    fingerprint is owned by the worker whose next point clockwise covers
    its hash.  Properties the plane leans on:

    * **deterministic** — placement depends only on ``(workers,
      replicas, key)``, so every front worker (and every test) computes
      the same owner for the same fingerprint without coordination;
    * **alias-stable** — ids naming byte-identical data resolve to one
      fingerprint and therefore one owner, preserving the single-process
      lane-determinism guarantee across processes;
    * **minimally disruptive** — :meth:`without` removes one worker and
      only the keys it owned move (to the survivors), which is what a
      reroute-on-death policy would use.

    Hashing is ``blake2b`` (same family as the dataset fingerprint
    itself) — stable across processes and Python versions, unlike
    ``hash()``.
    """

    def __init__(self, workers, *, replicas: int = 64) -> None:
        if isinstance(workers, int):
            workers = range(workers)
        self.workers = tuple(workers)
        if not self.workers:
            raise ValueError("HashRing needs at least one worker")
        if len(set(self.workers)) != len(self.workers):
            raise ValueError(f"duplicate workers: {self.workers!r}")
        self.replicas = int(replicas)
        if self.replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        points: list[tuple[int, object]] = []
        for worker in self.workers:
            for r in range(self.replicas):
                points.append((self._point(f"{worker!r}#{r}"), worker))
        points.sort()
        self._hashes = [p for p, _ in points]
        self._owners = [w for _, w in points]

    @staticmethod
    def _point(token: str) -> int:
        digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "big")

    def owner(self, key: str) -> object:
        """The worker that owns ``key`` (a dataset content fingerprint)."""
        h = self._point(str(key))
        idx = bisect_right(self._hashes, h)
        if idx == len(self._hashes):
            idx = 0  # wrap: the circle's first point covers the top arc
        return self._owners[idx]

    def without(self, worker) -> "HashRing":
        """A ring with ``worker`` removed — only its keys change owner."""
        survivors = tuple(w for w in self.workers if w != worker)
        if len(survivors) == len(self.workers):
            raise ValueError(f"worker {worker!r} is not on the ring")
        return HashRing(survivors, replicas=self.replicas)

    def __len__(self) -> int:
        return len(self.workers)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HashRing(workers={self.workers!r}, replicas={self.replicas})"
