"""Content fingerprints for datasets and requests.

The batch layer dedupes work by ``(dataset, operation, parameters)``
identity, so both halves need stable, content-derived fingerprints:

* :func:`dataset_fingerprint` hashes the actual observations (values,
  arities, layout, names) — two sessions over byte-identical data produce
  the same fingerprint regardless of how the data was loaded;
* :func:`request_fingerprint` hashes the dataset fingerprint together with
  a *canonicalised* parameter mapping (JSON with sorted keys), so key
  order and equivalent spellings of a request collapse to one key.

BLAKE2b (16-byte digest) keeps fingerprints short enough for log lines
and manifests while making accidental collisions a non-concern.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Mapping

import numpy as np

from ..datasets.dataset import DiscreteDataset

__all__ = [
    "dataset_fingerprint",
    "request_fingerprint",
    "engine_config_fingerprint",
    "canonical_json",
]

_DIGEST_SIZE = 16


def canonical_json(payload: Mapping) -> str:
    """Deterministic JSON rendering (sorted keys, no whitespace drift)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)


def dataset_fingerprint(dataset: DiscreteDataset) -> str:
    """Hex fingerprint of a dataset's full content.

    Layout participates deliberately: the engine's caches key on column
    *contents*, which are layout-independent, but a request served against
    sample-major data is a different run configuration than the same data
    variable-major (the paper's Table IV contrast), so the fingerprint
    keeps them distinct.
    """
    h = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    h.update(dataset.layout.encode())
    h.update("|".join(dataset.names).encode())
    h.update(np.ascontiguousarray(dataset.arities).tobytes())
    h.update(np.ascontiguousarray(dataset.values).tobytes())
    return h.hexdigest()


def request_fingerprint(dataset_fp: str, op: str, params: Mapping) -> str:
    """Hex fingerprint of one request against one dataset."""
    h = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    h.update(dataset_fp.encode())
    h.update(op.encode())
    h.update(canonical_json(params).encode())
    return h.hexdigest()


def engine_config_fingerprint(config: Mapping) -> str:
    """Hex fingerprint of result-affecting engine configuration.

    The durable store's skeleton blobs are keyed by ``(dataset
    fingerprint, engine-config fingerprint, call parameters)`` — a
    restarted engine whose configuration hashes differently simply
    misses and relearns, which is what keeps warm restarts exact without
    any migration logic.
    """
    h = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    h.update(b"engine-config|")
    h.update(canonical_json(config).encode())
    return h.hexdigest()
