"""Durable manifest journal: one row per response, appended as it happens.

The JSON run manifest (:mod:`repro.engine.manifest`) is written *at
exit* — a crash mid-stream loses the whole audit trail.  With a store
attached, every manifest row is additionally appended here the moment
its response exists, under the run's id and a monotonically increasing
sequence number.  A run that dies after serving 17 requests leaves
exactly 17 journal rows; nothing is buffered, nothing is rewritten.

Rows carry both the manifest entry's wall clock (``t_wall``) and the
process-monotonic clock (``t_mono``), so journals are replay-orderable
even across wall-clock adjustments; the sequence number is the total
order within a run, and ``t_mono`` orders rows *across* concurrently
journaling sessions of the same run.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time

from .db import StoreDB

__all__ = ["ManifestJournal", "new_run_id", "journal_rows", "journal_runs"]

_run_counter = itertools.count()


def new_run_id() -> str:
    """Process-unique, sortable run id (wall ns + pid + counter)."""
    return f"{time.time_ns():016x}-{os.getpid():x}-{next(_run_counter):x}"


class ManifestJournal:
    """Append-only journal of one run's manifest rows.

    One journal is shared by every session manifest of a run (plus the
    unrouted-error log), so the sequence number is a run-global total
    order — exactly what a replay needs.
    """

    def __init__(self, db: StoreDB, run_id: str | None = None) -> None:
        self.db = db
        self.run_id = run_id or new_run_id()
        self._lock = threading.Lock()
        # Resuming an existing run id continues its sequence.
        last = self.db.scalar(
            "SELECT MAX(seq) FROM journal WHERE run_id=?", (self.run_id,), default=-1
        )
        self._seq = int(last) + 1
        self.n_appended = 0

    def append(self, doc: dict) -> int:
        """Durably append one row; returns its sequence number."""
        with self._lock:
            seq = self._seq
            self._seq += 1
            self.db.execute(
                "INSERT OR REPLACE INTO journal(run_id, seq, doc) VALUES (?,?,?)",
                (self.run_id, seq, json.dumps(doc)),
            )
            self.n_appended += 1
        return seq

    def rows(self) -> list[dict]:
        return journal_rows(self.db, self.run_id)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ManifestJournal(run_id={self.run_id!r}, appended={self.n_appended})"


def journal_rows(db: StoreDB, run_id: str) -> list[dict]:
    """All rows of one run, in sequence order, ``seq`` folded in."""
    out = []
    for seq, doc in db.execute(
        "SELECT seq, doc FROM journal WHERE run_id=? ORDER BY seq", (run_id,)
    ):
        try:
            row = json.loads(doc)
        except json.JSONDecodeError:
            row = {"undecodable": doc}
        row["seq"] = int(seq)
        out.append(row)
    return out


def journal_runs(db: StoreDB) -> list[tuple[str, int]]:
    """Known run ids with their row counts, oldest first."""
    return [
        (run_id, int(n))
        for run_id, n in db.execute(
            "SELECT run_id, COUNT(*) FROM journal GROUP BY run_id ORDER BY run_id"
        )
    ]
