"""The content-addressed engine store: one facade over every tier.

:class:`EngineStore` is what the serving layers hold — one per
``--store PATH`` — and bundles the four persistence tiers over one
SQLite database (:class:`~repro.engine.store.db.StoreDB`):

=============  ======================================================
tier           key -> value
=============  ======================================================
results        request fingerprint -> exact JSON payload
skeletons      skeleton fingerprint -> pickled (skeleton, sepsets,
               stats), with (dataset_fp, config_fp) audit columns
spill          (dataset_fp, cache key) -> evicted stats-cache entry
journal        (run id, seq) -> manifest row, appended per response
=============  ======================================================

Invalidation is purely by fingerprint mismatch: nothing in the store is
ever mutated or migrated, so a warm restart can only serve bytes that an
identically-configured cold run would have produced.  Every getter is
total — decode failures and I/O errors read as misses (the DB layer
degrades itself) — and every counter is exact, surfaced through
:meth:`stats` into ``EngineServer.stats()["store"]``.
"""

from __future__ import annotations

import json
import pickle
import threading
import time
from pathlib import Path

from .db import STORE_VERSION, StoreDB
from .journal import ManifestJournal, journal_rows, journal_runs
from .spill import DEFAULT_SPILL_BYTES, SpillTier

__all__ = ["EngineStore"]


class EngineStore:
    """Durable, content-addressed cache plane for the serving stack.

    Parameters
    ----------
    path:
        SQLite database path (created on first use; ``":memory:"`` gives
        a process-local store, useful for tests and for routing session
        revival through the store without touching disk).
    spill_bytes:
        Disk budget of each dataset's stats-spill namespace.
    """

    def __init__(
        self, path: str | Path, *, spill_bytes: int = DEFAULT_SPILL_BYTES
    ) -> None:
        self.db = StoreDB(path)
        self.spill_bytes = int(spill_bytes)
        self._lock = threading.Lock()
        self._spills: dict[str, SpillTier] = {}
        self.result_hits = 0
        self.result_misses = 0
        self.result_puts = 0
        self.skeleton_hits = 0
        self.skeleton_misses = 0
        self.skeleton_puts = 0
        self.n_blob_errors = 0

    @classmethod
    def ensure(cls, store) -> "EngineStore | None":
        """Coerce ``None`` / path / instance into an optional store."""
        if store is None or isinstance(store, cls):
            return store
        return cls(store)

    @property
    def path(self) -> str:
        return self.db.path

    @property
    def active(self) -> bool:
        return self.db.active

    # ------------------------------------------------------------------ #
    # result cache tier
    # ------------------------------------------------------------------ #
    def get_result(self, fingerprint: str) -> dict | None:
        """The exact payload a previous run returned for this request."""
        rows = self.db.execute(
            "SELECT payload FROM results WHERE fingerprint=?", (fingerprint,)
        )
        if rows:
            try:
                payload = json.loads(rows[0][0])
            except json.JSONDecodeError:
                self.n_blob_errors += 1
                self.result_misses += 1
                return None
            self.result_hits += 1
            return payload
        self.result_misses += 1
        return None

    def put_result(
        self, fingerprint: str, dataset_fp: str, op: str, payload: dict
    ) -> None:
        self.db.execute(
            "INSERT OR REPLACE INTO results"
            " (fingerprint, dataset_fp, op, payload, created_wall)"
            " VALUES (?,?,?,?,?)",
            (fingerprint, dataset_fp, op, json.dumps(payload), time.time()),
        )
        self.result_puts += 1

    # ------------------------------------------------------------------ #
    # skeleton blob tier
    # ------------------------------------------------------------------ #
    def get_skeleton(self, key: str):
        """Unpickled (skeleton, sepsets, stats), or ``None`` on any miss."""
        rows = self.db.execute("SELECT blob FROM skeletons WHERE key=?", (key,))
        if rows:
            try:
                obj = pickle.loads(rows[0][0])
            except Exception:
                # An undecodable blob is a cold start for this key only.
                self.n_blob_errors += 1
                self.db.execute("DELETE FROM skeletons WHERE key=?", (key,))
                self.skeleton_misses += 1
                return None
            self.skeleton_hits += 1
            return obj
        self.skeleton_misses += 1
        return None

    def put_skeleton(self, key: str, dataset_fp: str, config_fp: str, obj) -> None:
        blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        self.db.execute(
            "INSERT OR REPLACE INTO skeletons"
            " (key, dataset_fp, config_fp, blob, created_wall)"
            " VALUES (?,?,?,?,?)",
            (key, dataset_fp, config_fp, blob, time.time()),
        )
        self.skeleton_puts += 1

    # ------------------------------------------------------------------ #
    # spill & journal tiers
    # ------------------------------------------------------------------ #
    def spill_tier(self, dataset_fp: str) -> SpillTier:
        """The dataset's spill namespace (one shared tier per fingerprint)."""
        with self._lock:
            tier = self._spills.get(dataset_fp)
            if tier is None:
                tier = SpillTier(self.db, dataset_fp, max_bytes=self.spill_bytes)
                self._spills[dataset_fp] = tier
            return tier

    def journal(self, run_id: str | None = None) -> ManifestJournal:
        return ManifestJournal(self.db, run_id)

    def journal_rows(self, run_id: str) -> list[dict]:
        return journal_rows(self.db, run_id)

    def journal_runs(self) -> list[tuple[str, int]]:
        return journal_runs(self.db)

    # ------------------------------------------------------------------ #
    # introspection & lifecycle
    # ------------------------------------------------------------------ #
    def counts(self) -> dict:
        """Row counts per tier (0 when the DB is disabled)."""
        return {
            table: int(self.db.scalar(f"SELECT COUNT(*) FROM {table}", default=0))
            for table in ("results", "skeletons", "spill", "journal")
        }

    def stats(self) -> dict:
        """JSON-able snapshot: the ``store`` block of server stats."""
        with self._lock:
            spills = {
                fp: tier.stats() for fp, tier in self._spills.items()
            }
        return {
            "path": self.path,
            "version": STORE_VERSION,
            "active": self.active,
            "file_bytes": self.db.file_bytes(),
            "io_errors": self.db.n_io_errors,
            "blob_errors": self.n_blob_errors,
            "rows": self.counts(),
            "results": {
                "hits": self.result_hits,
                "misses": self.result_misses,
                "puts": self.result_puts,
            },
            "skeletons": {
                "hits": self.skeleton_hits,
                "misses": self.skeleton_misses,
                "puts": self.skeleton_puts,
            },
            "spill": spills,
        }

    def close(self) -> None:
        self.db.close()

    def __enter__(self) -> "EngineStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EngineStore({self.path!r}, active={self.active})"
