"""repro.engine.store — durable content-addressed persistence.

Everything the engine's performance story rests on — request-fingerprint
result dedup, learned skeletons, the byte-budgeted stats cache, run
manifests — used to evaporate on every restart.  This subsystem persists
all four behind one SQLite database (WAL mode, safe under the threaded
dispatcher, degrading to a cold start with a warning on any damage):

* :class:`EngineStore` — the facade the serving layers hold (result
  cache, skeleton blobs, spill namespaces, journals; see :mod:`.core`);
* :class:`StoreDB` — the degradation-first SQLite substrate
  (:mod:`.db`);
* :class:`SpillTier` — the disk tier under the
  :class:`~repro.engine.statscache.SufficientStatsCache` LRU
  (:mod:`.spill`);
* :class:`ManifestJournal` — per-response durable manifest rows
  (:mod:`.journal`).

Wiring: ``LearningSession(store=...)`` consults skeleton blobs and
attaches the spill tier; ``BatchServer`` consults the result cache
before any compute and writes through on miss; ``EngineServer`` shares
one store (and one journal) across every session it spins up, so evicted
sessions revive warm; ``fastbns batch/serve --store PATH`` wires it from
the CLI.  Correctness is exact by construction — every tier is keyed by
content fingerprints and invalidation is fingerprint mismatch, so a
warm-restarted server produces byte-identical payloads to a cold one.
"""

from .core import EngineStore
from .db import STORE_VERSION, StoreDB
from .journal import ManifestJournal, journal_rows, journal_runs, new_run_id
from .spill import DEFAULT_SPILL_BYTES, SpillTier

__all__ = [
    "EngineStore",
    "StoreDB",
    "STORE_VERSION",
    "SpillTier",
    "DEFAULT_SPILL_BYTES",
    "ManifestJournal",
    "journal_rows",
    "journal_runs",
    "new_run_id",
]
