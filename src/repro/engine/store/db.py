"""SQLite substrate of the durable engine store.

One :class:`StoreDB` wraps one database file (the ``--store PATH`` the
CLI passes down).  Design constraints, in order:

* **Never take the engine down.**  Persistence is an accelerator, not a
  dependency: a corrupt, truncated, version-skewed or unwritable store
  must degrade the engine to a *cold start with a warning*, not a crash.
  Open failures sidestep the broken file (renamed to ``<path>.corrupt``)
  and start fresh; runtime I/O failures disable the store for the rest
  of the process — every tier then reads as a miss and writes as a
  no-op, which is exactly the no-store behaviour.
* **Safe under the threaded dispatcher.**  One connection, opened with
  ``check_same_thread=False``, serialised by one lock — the store's
  workload is tiny rows on the serving path, so a single writer is not a
  bottleneck.  WAL mode keeps *cross-process* readers (a second serve
  run against the same store) from blocking the writer.
* **Exact invalidation by key.**  The schema never stores anything that
  is not addressed by a content fingerprint (dataset, request, engine
  config) — a mismatch is simply a miss, so a warm restart can only ever
  serve byte-identical payloads.
"""

from __future__ import annotations

import os
import sqlite3
import threading
import warnings
from pathlib import Path

__all__ = ["StoreDB", "STORE_VERSION"]

#: Bumped whenever the schema changes shape incompatibly; a store written
#: by a different version is sidestepped like a corrupt file (cold start),
#: never migrated in place.
STORE_VERSION = 1

_SCHEMA = (
    "CREATE TABLE IF NOT EXISTS meta ("
    " key TEXT PRIMARY KEY, value TEXT NOT NULL)",
    # PR 1 request fingerprint -> the exact JSON payload BatchServer
    # returned; consulted before any compute, written through on miss.
    "CREATE TABLE IF NOT EXISTS results ("
    " fingerprint TEXT PRIMARY KEY,"
    " dataset_fp TEXT NOT NULL,"
    " op TEXT NOT NULL,"
    " payload TEXT NOT NULL,"
    " created_wall REAL NOT NULL)",
    "CREATE INDEX IF NOT EXISTS idx_results_dataset ON results(dataset_fp)",
    # Learned skeleton/sepset/stats blobs keyed by the full skeleton
    # fingerprint, with (dataset_fp, config_fp) columns for audit.
    "CREATE TABLE IF NOT EXISTS skeletons ("
    " key TEXT PRIMARY KEY,"
    " dataset_fp TEXT NOT NULL,"
    " config_fp TEXT NOT NULL,"
    " blob BLOB NOT NULL,"
    " created_wall REAL NOT NULL)",
    "CREATE INDEX IF NOT EXISTS idx_skeletons_dataset ON skeletons(dataset_fp)",
    # Spill tier under the SufficientStatsCache LRU: entries evicted from
    # the in-memory byte budget land here and promote back on lookup.
    "CREATE TABLE IF NOT EXISTS spill ("
    " dataset_fp TEXT NOT NULL,"
    " key TEXT NOT NULL,"
    " blob BLOB NOT NULL,"
    " nbytes INTEGER NOT NULL,"
    " last_used REAL NOT NULL,"
    " PRIMARY KEY (dataset_fp, key))",
    # Durable manifest journal: one row appended per response, so a crash
    # mid-stream leaves an exact, replay-orderable audit trail.
    "CREATE TABLE IF NOT EXISTS journal ("
    " run_id TEXT NOT NULL,"
    " seq INTEGER NOT NULL,"
    " doc TEXT NOT NULL,"
    " PRIMARY KEY (run_id, seq))",
)


class StoreDB:
    """One SQLite file behind every store tier; degrades, never raises.

    All public methods are thread-safe and total: after any SQLite error
    the instance flips to *disabled* (``active`` False) and every
    subsequent call is a cheap no-op returning empty results.
    """

    def __init__(self, path: str | Path, *, timeout_s: float = 30.0) -> None:
        self.path = str(path)
        self.timeout_s = float(timeout_s)
        self._lock = threading.RLock()
        self._conn: sqlite3.Connection | None = None
        self._closed = False
        self.n_io_errors = 0
        self.sidestepped: str | None = None
        try:
            self._conn = self._connect()
        except sqlite3.Error as exc:
            self._handle_broken_open(exc)

    def __getstate__(self):
        # A live connection (and its WAL file handles) must never ride a
        # pickle into a worker or survive a fork: two processes writing
        # one WAL through inherited descriptors corrupts the store.
        # Pickle-facing tiers sever their reference instead (the stats
        # cache nulls its spill tier); shipping the path and reopening is
        # the supported pattern.
        raise TypeError("StoreDB is process-local; pass the store path and reopen instead")

    # ------------------------------------------------------------------ #
    # opening & degradation
    # ------------------------------------------------------------------ #
    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(
            self.path,
            timeout=self.timeout_s,
            check_same_thread=False,
            isolation_level=None,  # autocommit: one durable row per write
        )
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            for stmt in _SCHEMA:
                conn.execute(stmt)
            row = conn.execute(
                "SELECT value FROM meta WHERE key='store_version'"
            ).fetchone()
            if row is None:
                conn.execute(
                    "INSERT INTO meta(key, value) VALUES ('store_version', ?)",
                    (str(STORE_VERSION),),
                )
            elif row[0] != str(STORE_VERSION):
                raise sqlite3.DatabaseError(
                    f"store version {row[0]} != supported {STORE_VERSION}"
                )
        except sqlite3.Error:
            conn.close()
            raise
        return conn

    def _handle_broken_open(self, exc: sqlite3.Error) -> None:
        """Sidestep an unreadable store file and retry once, fresh."""
        self._conn = None
        moved = self._sidestep()
        if moved:
            try:
                self._conn = self._connect()
            except sqlite3.Error:
                self._conn = None
        state = (
            f"moved aside to {moved}; starting cold"
            if moved and self._conn is not None
            else "persistence disabled for this run"
        )
        warnings.warn(
            f"engine store {self.path!r} is unusable ({exc}); {state}",
            RuntimeWarning,
            stacklevel=4,
        )

    def _sidestep(self) -> str | None:
        """Rename the broken DB (and WAL droppings) out of the way."""
        if self.path == ":memory:" or not os.path.exists(self.path):
            return None
        target = self.path + ".corrupt"
        try:
            os.replace(self.path, target)
        except OSError:
            return None
        for suffix in ("-wal", "-shm"):
            try:
                os.replace(self.path + suffix, target + suffix)
            except OSError:
                pass
        self.sidestepped = target
        return target

    def _disable(self, exc: sqlite3.Error) -> None:
        warnings.warn(
            f"engine store {self.path!r} failed mid-run ({exc}); "
            "persistence disabled, serving continues without it",
            RuntimeWarning,
            stacklevel=5,
        )
        try:
            if self._conn is not None:
                self._conn.close()
        except sqlite3.Error:
            pass
        self._conn = None

    # ------------------------------------------------------------------ #
    # I/O
    # ------------------------------------------------------------------ #
    @property
    def active(self) -> bool:
        """True while reads and writes actually touch the database."""
        return self._conn is not None

    def execute(self, sql: str, params: tuple = ()) -> list[tuple]:
        """Run one statement, returning all rows; total (never raises)."""
        with self._lock:
            if self._conn is None:
                return []
            try:
                cur = self._conn.execute(sql, params)
                rows = cur.fetchall()
                cur.close()
                return rows
            except sqlite3.Error as exc:
                self.n_io_errors += 1
                self._disable(exc)
                return []

    def scalar(self, sql: str, params: tuple = (), default=None):
        rows = self.execute(sql, params)
        if not rows or rows[0][0] is None:
            return default
        return rows[0][0]

    def file_bytes(self) -> int:
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                try:
                    self._conn.close()
                except sqlite3.Error:
                    pass
                self._conn = None
            self._closed = True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "active" if self.active else ("closed" if self._closed else "disabled")
        return f"StoreDB({self.path!r}, {state})"
