"""Spill tier under the in-memory SufficientStatsCache LRU.

The stats cache's byte budget forces a hard choice on big workloads:
evict a contingency table and pay a full ``m``-sample rebuild when it
comes back.  With a store attached, eviction *demotes* instead — the
entry's exact fields are pickled into the ``spill`` table — and a later
lookup *promotes* it back into memory, bit-identical to the table that
was evicted (tables are pure functions of their variable tuple, so a
spilled row can never go stale within its dataset fingerprint).

The tier is namespaced by dataset fingerprint: one store file may back
many sessions over different datasets without key collisions.  A
process-local key index (loaded once at attach) keeps the probe on the
miss path an O(1) set lookup — SQLite is only touched when the key is
actually there, so a cold stream pays nothing for having a spill tier.

Only real values spill: the batched group kernel's transient ``_PENDING``
reservation placeholders are dropped on eviction exactly as before (their
identity-based sentinel would not survive a pickle round trip, and they
are meaningless outside the group evaluation that reserved them).
"""

from __future__ import annotations

import pickle
import threading
import time

from .db import StoreDB

__all__ = ["SpillTier", "DEFAULT_SPILL_BYTES"]

#: Disk budget per (store, dataset) spill namespace.  Generous relative
#: to the 64 MiB in-memory default — disk is the point — but still
#: bounded so one hot dataset cannot grow a store file without limit.
DEFAULT_SPILL_BYTES = 256 << 20  # 256 MiB


class SpillTier:
    """Disk extension of one dataset's stats cache; promote on lookup.

    All methods are called by :class:`~repro.engine.statscache.
    SufficientStatsCache` under its own lock, but the tier carries its
    own lock too so a shared store stays safe if two caches over the
    same dataset fingerprint ever coexist (server revival races).
    """

    def __init__(
        self, db: StoreDB, dataset_fp: str, max_bytes: int = DEFAULT_SPILL_BYTES
    ) -> None:
        self.db = db
        self.dataset_fp = str(dataset_fp)
        self.max_bytes = int(max_bytes)
        self._lock = threading.RLock()
        #: Undecodable spill blobs dropped (each costs one table rebuild).
        self.n_blob_errors = 0
        # Key index: spill keys currently on disk -> nbytes.  Loaded once;
        # kept exact by put/evict, self-healing on phantom reads (a row
        # another process evicted reads as a miss and drops from the index).
        self._keys: dict[str, int] = {
            key: int(nbytes)
            for key, nbytes in self.db.execute(
                "SELECT key, nbytes FROM spill WHERE dataset_fp=?",
                (self.dataset_fp,),
            )
        }
        self.current_bytes = sum(self._keys.values())

    @staticmethod
    def key_text(key) -> str:
        """Canonical text form of a cache key (tuples of ints/strs)."""
        return repr(key)

    def has(self, key) -> bool:
        return self.key_text(key) in self._keys

    def __len__(self) -> int:
        return len(self._keys)

    # ------------------------------------------------------------------ #
    # demote / promote
    # ------------------------------------------------------------------ #
    def put(
        self,
        key,
        value,
        nbytes: int,
        kind: str,
        varset,
        dims,
        dense: bool,
    ) -> bool:
        """Persist one evicted entry; returns False when not admitted."""
        nbytes = int(nbytes)
        if nbytes > self.max_bytes or not self.db.active:
            return False
        kt = self.key_text(key)
        blob = pickle.dumps(
            (value, nbytes, kind, varset, dims, dense),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        with self._lock:
            self.db.execute(
                "INSERT OR REPLACE INTO spill(dataset_fp, key, blob, nbytes, last_used)"
                " VALUES (?,?,?,?,?)",
                (self.dataset_fp, kt, blob, nbytes, time.time()),
            )
            old = self._keys.get(kt)
            if old is not None:
                self.current_bytes -= old
            self._keys[kt] = nbytes
            self.current_bytes += nbytes
            self._evict_to_budget()
        return True

    def get(self, key):
        """Fetch one spilled entry's fields, refreshing its recency.

        Returns the ``(value, nbytes, kind, varset, dims, dense)`` tuple
        the eviction stored, or ``None`` — missing rows and undecodable
        blobs both read as a miss (and drop from the index), so a damaged
        spill row costs one rebuild, never a crash.
        """
        kt = self.key_text(key)
        with self._lock:
            if kt not in self._keys:
                return None
            rows = self.db.execute(
                "SELECT blob FROM spill WHERE dataset_fp=? AND key=?",
                (self.dataset_fp, kt),
            )
            if not rows:
                self.current_bytes -= self._keys.pop(kt, 0)
                return None
            try:
                fields = pickle.loads(rows[0][0])
            except Exception:
                self.n_blob_errors += 1
                self.db.execute(
                    "DELETE FROM spill WHERE dataset_fp=? AND key=?",
                    (self.dataset_fp, kt),
                )
                self.current_bytes -= self._keys.pop(kt, 0)
                return None
            self.db.execute(
                "UPDATE spill SET last_used=? WHERE dataset_fp=? AND key=?",
                (time.time(), self.dataset_fp, kt),
            )
        return fields

    def _evict_to_budget(self) -> None:
        """Drop least-recently-used rows until the disk budget holds."""
        while self.current_bytes > self.max_bytes and self._keys:
            row = self.db.execute(
                "SELECT key, nbytes FROM spill WHERE dataset_fp=?"
                " ORDER BY last_used ASC LIMIT 1",
                (self.dataset_fp,),
            )
            if not row:
                break
            kt, nbytes = row[0]
            self.db.execute(
                "DELETE FROM spill WHERE dataset_fp=? AND key=?",
                (self.dataset_fp, kt),
            )
            self._keys.pop(kt, None)
            self.current_bytes -= int(nbytes)

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._keys),
                "bytes": self.current_bytes,
                "max_bytes": self.max_bytes,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SpillTier(dataset={self.dataset_fp[:8]}…, entries={len(self._keys)}, "
            f"bytes={self.current_bytes})"
        )
