"""JSONL client for the engine's socket transport.

:class:`EngineClient` is the thin counterpart of
:class:`~repro.engine.transport.EngineTransport`: it frames request
objects onto one connection and reads ordered responses back.  It exists
so tests, benchmarks and embedding applications do not each reinvent the
line protocol — and so the two usage patterns the streaming dispatcher
was built for have first-class spellings:

* **lockstep** — :meth:`request` sends one object and blocks for its
  response (what an interactive caller does);
* **pipelined** — :meth:`send` many, then :meth:`recv` in order (what a
  throughput-oriented producer does; the server's in-flight window, not
  the client, bounds buffering).  One sender thread plus one reader
  thread is supported — the paced open-loop replay shape — because the
  pending count and latency pairing are lock-guarded.

The convenience wrappers (:meth:`learn`, :meth:`blanket`,
:meth:`register`, :meth:`stats`, :meth:`close_dataset`) are lockstep.

Every send is timestamped and every recv records the send→recv latency
of the response it completes (responses arrive in send order, so the
pairing is exact even pipelined).  :attr:`latencies_s` keeps the most
recent samples and :meth:`latency_summary` reports p50/p95/p99 — the
client side of the workload layer's SLO harness.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from collections import deque

from .transport import parse_address

__all__ = ["EngineClient"]


class EngineClient:
    """One JSONL connection to a running :class:`EngineTransport`.

    ``address`` accepts what the server side prints: ``"HOST:PORT"``,
    ``"unix:PATH"``, or a ``(host, port)`` tuple.  ``timeout`` (seconds)
    applies to connect and to every blocking read — a hung server
    surfaces as ``socket.timeout`` instead of a silent wait.
    """

    def __init__(self, address, *, timeout: float | None = 30.0) -> None:
        kind, addr = parse_address(address)
        if kind == "unix":
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            target: object = addr
        else:
            self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            host, port = addr
            target = (host or "127.0.0.1", port)
        self._sock.settimeout(timeout)
        self._sock.connect(target)
        self._reader = self._sock.makefile("r", encoding="utf-8", newline="\n")
        self._writer = self._sock.makefile("w", encoding="utf-8", newline="\n")
        self._pending = 0
        self._closed = False
        # Guards the pending count and timestamp pairing so one thread
        # may pipeline sends while another reads responses (the paced
        # open-loop replay pattern); the two socket directions are
        # independent, so no lock is held across I/O.
        self._lock = threading.Lock()
        self._sent_t: deque[float] = deque()
        #: send→recv latency samples (seconds), most recent 65536.
        self.latencies_s: deque[float] = deque(maxlen=65536)

    # ------------------------------------------------------------------ #
    # wire primitives
    # ------------------------------------------------------------------ #
    def send(self, request: dict) -> None:
        """Queue one request without waiting for its response."""
        if self._closed:
            raise RuntimeError("client is closed")
        # Timestamp before the flush: once the line is on the wire the
        # response can race back, and the reader must find the pairing
        # entry already queued.
        with self._lock:
            self._pending += 1
            self._sent_t.append(time.monotonic())
        self._writer.write(json.dumps(request) + "\n")
        self._writer.flush()

    def recv(self) -> dict:
        """Read the next response, in send order.

        Raises ``ConnectionError`` on a server that hung up with
        responses still owed (fewer lines than requests is how a
        non-drained shutdown looks from the client side).
        """
        if self._closed:
            raise RuntimeError("client is closed")
        line = self._reader.readline()
        if not line:
            raise ConnectionError(
                f"server closed the connection with {self._pending} response(s) pending"
            )
        with self._lock:
            self._pending -= 1
            if self._sent_t:
                self.latencies_s.append(time.monotonic() - self._sent_t.popleft())
        return json.loads(line)

    def request(self, request: dict) -> dict:
        """Lockstep round trip: send one request, block for its response."""
        self.send(request)
        return self.recv()

    def drain(self) -> list[dict]:
        """Collect every response still owed for pipelined sends."""
        return [self.recv() for _ in range(self._pending)]

    # ------------------------------------------------------------------ #
    # protocol conveniences (lockstep)
    # ------------------------------------------------------------------ #
    def learn(self, dataset: str | None = None, **params) -> dict:
        req = {"op": "learn", **params}
        if dataset is not None:
            req["dataset"] = dataset
        return self.request(req)

    def blanket(self, target, dataset: str | None = None, **params) -> dict:
        req = {"op": "blanket", "target": target, **params}
        if dataset is not None:
            req["dataset"] = dataset
        return self.request(req)

    def register(self, dataset: str, source) -> dict:
        return self.request({"op": "register", "dataset": dataset, "source": source})

    def close_dataset(self, dataset: str, *, unregister: bool = False) -> dict:
        return self.request(
            {"op": "close_dataset", "dataset": dataset, "unregister": unregister}
        )

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    # ------------------------------------------------------------------ #
    # latency
    # ------------------------------------------------------------------ #
    def latency_summary(self) -> dict:
        """p50/p95/p99/max/mean (ms) over this client's send→recv samples."""
        from .workload import summarize_latencies

        return summarize_latencies(list(self.latencies_s))

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for closable in (self._writer, self._reader, self._sock):
            try:
                closable.close()
            except OSError:
                pass

    def __enter__(self) -> "EngineClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else f"pending={self._pending}"
        return f"EngineClient({state})"
