"""Trace-replay workload layer: realistic traffic for the engine server.

Every bench before this module drove the dispatcher with a tiny fixed
stream, so nothing demonstrated the ROADMAP's north star — heavy,
skewed, bursty traffic from many tenants.  This module makes traffic a
first-class, *reproducible* artifact:

* :class:`WorkloadSpec` + :func:`generate_trace` — a deterministic,
  seeded trace generator: zipf-skewed dataset popularity (rank 1 is the
  hot tenant), poisson / bursty / uniform arrival schedules, a mixed
  learn / relearn / blanket / admin op profile, and a configurable
  error-injection rate (bad parameters, unknown datasets, missing
  fields — the malformed traffic a real fleet sees).  The same seed
  always produces the byte-identical trace.
* :class:`Trace` — a JSONL file format (header line with the embedded
  spec, then one record per request) with canonical serialisation, so
  a committed trace is a regression-stable golden file:
  :func:`verify_trace` regenerates from the header and byte-compares.
* :func:`replay` — the latency harness over
  :meth:`~repro.engine.server.EngineServer.serve_iter`: each request is
  timestamped at intake and completion (via the dispatcher's ``timings``
  side channel — the wire schema is untouched) and the
  :class:`WorkloadReport` summarises p50/p95/p99/max latency and
  throughput, overall and per tenant, ready for ``BENCH_workload.json``.
* :func:`replay_client` — the same harness through an
  :class:`~repro.engine.client.EngineClient` socket connection, using
  the client's send→recv latency samples.

Replaying a trace never changes any answer: the trace is just a request
stream, and every serving layer below is exact — so two PRs replaying
one committed trace are comparing identical work.
"""

from __future__ import annotations

import json
import math
import random
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterator, Mapping, Sequence

from .server import DEFAULT_WINDOW, EngineServer

__all__ = [
    "WorkloadSpec",
    "Trace",
    "TraceRecord",
    "WorkloadReport",
    "generate_trace",
    "load_trace",
    "verify_trace",
    "replay",
    "replay_client",
    "percentile",
    "summarize_latencies",
    "TRACE_KIND",
    "TRACE_VERSION",
]

TRACE_KIND = "fastbns-workload-trace"
TRACE_VERSION = 1

_ARRIVALS = ("poisson", "bursty", "uniform")
_OPS = ("learn", "relearn", "blanket", "admin")


def _canon(obj) -> str:
    """Canonical JSON: sorted keys, no whitespace — the byte-identity
    contract of the trace format."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


# --------------------------------------------------------------------- #
# spec
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class WorkloadSpec:
    """Everything that determines a trace, embedded in its header.

    ``datasets`` are tenant ids in popularity order — the first is the
    zipf-hottest.  ``mix`` weights the four op kinds (``relearn``
    re-emits an earlier learn request of the same tenant verbatim, i.e.
    guaranteed result-cache traffic; ``admin`` emits ``stats`` barriers).
    ``error_rate`` is the probability a request is replaced by a
    deterministic bad variant (invalid ``gs``, unknown dataset, missing
    ``target``).  ``n_targets`` bounds blanket target indices — keep it
    at most the smallest replayed dataset's variable count.
    """

    n_requests: int = 500
    datasets: tuple[str, ...] = ("d0", "d1", "d2", "d3")
    seed: int = 0
    zipf_s: float = 1.1
    arrival: str = "poisson"
    rate: float = 200.0  # mean requests/s of the arrival schedule
    burst: int = 16  # requests per burst ("bursty" arrivals)
    mix: tuple[tuple[str, float], ...] = (
        ("learn", 0.45),
        ("relearn", 0.25),
        ("blanket", 0.25),
        ("admin", 0.05),
    )
    error_rate: float = 0.0
    alphas: tuple[float, ...] = (0.05, 0.01, 0.02)
    max_depth: int | None = 1
    n_targets: int = 8

    def __post_init__(self) -> None:
        if int(self.n_requests) < 1:
            raise ValueError(f"n_requests must be >= 1, got {self.n_requests}")
        if not self.datasets:
            raise ValueError("spec needs at least one dataset id")
        if self.arrival not in _ARRIVALS:
            raise ValueError(f"arrival must be one of {_ARRIVALS}, got {self.arrival!r}")
        if not (self.rate > 0 and math.isfinite(self.rate)):
            raise ValueError(f"rate must be a positive finite number, got {self.rate!r}")
        if int(self.burst) < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")
        if not 0.0 <= float(self.error_rate) <= 1.0:
            raise ValueError(f"error_rate must be in [0, 1], got {self.error_rate!r}")
        # Canonical (sorted) order: generation consumes the mix in tuple
        # order, so the order must be a function of the *contents* or a
        # round-tripped spec would regenerate a different trace.
        mix = tuple(sorted((str(k), float(v)) for k, v in self.mix))
        if any(k not in _OPS for k, _ in mix) or len({k for k, _ in mix}) != len(mix):
            raise ValueError(f"mix keys must be distinct and from {_OPS}, got {mix!r}")
        if any(v < 0 for _, v in mix) or not sum(v for _, v in mix) > 0:
            raise ValueError("mix weights must be non-negative with a positive sum")
        if not self.alphas:
            raise ValueError("spec needs at least one alpha")
        if int(self.n_targets) < 1:
            raise ValueError(f"n_targets must be >= 1, got {self.n_targets}")
        object.__setattr__(self, "n_requests", int(self.n_requests))
        object.__setattr__(self, "datasets", tuple(str(d) for d in self.datasets))
        object.__setattr__(self, "seed", int(self.seed))
        object.__setattr__(self, "zipf_s", float(self.zipf_s))
        object.__setattr__(self, "rate", float(self.rate))
        object.__setattr__(self, "burst", int(self.burst))
        object.__setattr__(self, "mix", mix)
        object.__setattr__(self, "error_rate", float(self.error_rate))
        object.__setattr__(self, "alphas", tuple(float(a) for a in self.alphas))
        object.__setattr__(
            self,
            "max_depth",
            None if self.max_depth is None else int(self.max_depth),
        )
        object.__setattr__(self, "n_targets", int(self.n_targets))

    def to_dict(self) -> dict:
        return {
            "n_requests": self.n_requests,
            "datasets": list(self.datasets),
            "seed": self.seed,
            "zipf_s": self.zipf_s,
            "arrival": self.arrival,
            "rate": self.rate,
            "burst": self.burst,
            "mix": {k: v for k, v in self.mix},
            "error_rate": self.error_rate,
            "alphas": list(self.alphas),
            "max_depth": self.max_depth,
            "n_targets": self.n_targets,
        }

    @classmethod
    def from_dict(cls, d: Mapping) -> "WorkloadSpec":
        d = dict(d)
        mix = d.pop("mix", None)
        kwargs = {
            key: d.pop(key)
            for key in (
                "n_requests", "datasets", "seed", "zipf_s", "arrival", "rate",
                "burst", "error_rate", "alphas", "max_depth", "n_targets",
            )
            if key in d
        }
        if d:
            raise ValueError(f"unknown workload spec fields: {sorted(d)}")
        if "datasets" in kwargs:
            kwargs["datasets"] = tuple(kwargs["datasets"])
        if "alphas" in kwargs:
            kwargs["alphas"] = tuple(kwargs["alphas"])
        if mix is not None:
            kwargs["mix"] = tuple(dict(mix).items())
        return cls(**kwargs)


# --------------------------------------------------------------------- #
# trace
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class TraceRecord:
    """One request of a trace: arrival offset, tenant, request object."""

    index: int
    at_s: float
    tenant: str
    request: dict

    def to_line(self) -> str:
        return _canon(
            {"i": self.index, "at_s": self.at_s, "tenant": self.tenant, "request": self.request}
        )


@dataclass(frozen=True)
class Trace:
    """A materialised workload: spec header plus its request records."""

    spec: WorkloadSpec
    records: tuple[TraceRecord, ...] = field(default_factory=tuple)

    def __len__(self) -> int:
        return len(self.records)

    def requests(self) -> Iterator[dict]:
        for rec in self.records:
            yield rec.request

    def header(self) -> dict:
        return {
            "kind": TRACE_KIND,
            "version": TRACE_VERSION,
            "n_requests": len(self.records),
            "spec": self.spec.to_dict(),
        }

    def dumps(self) -> str:
        lines = [_canon(self.header())]
        lines.extend(rec.to_line() for rec in self.records)
        return "\n".join(lines) + "\n"

    def save(self, path) -> None:
        Path(path).write_text(self.dumps(), encoding="utf-8")

    @classmethod
    def loads(cls, text: str) -> "Trace":
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise ValueError("empty trace")
        header = json.loads(lines[0])
        if not isinstance(header, dict) or header.get("kind") != TRACE_KIND:
            raise ValueError(f"not a {TRACE_KIND} file (bad header line)")
        if header.get("version") != TRACE_VERSION:
            raise ValueError(
                f"trace version {header.get('version')!r} unsupported "
                f"(this build reads version {TRACE_VERSION})"
            )
        spec = WorkloadSpec.from_dict(header.get("spec", {}))
        records = []
        for i, line in enumerate(lines[1:]):
            d = json.loads(line)
            records.append(
                TraceRecord(
                    index=int(d["i"]),
                    at_s=float(d["at_s"]),
                    tenant=str(d["tenant"]),
                    request=dict(d["request"]),
                )
            )
            if records[-1].index != i:
                raise ValueError(f"trace records out of order at line {i + 2}")
        if header.get("n_requests") != len(records):
            raise ValueError(
                f"header claims {header.get('n_requests')} records, file has {len(records)}"
            )
        return cls(spec=spec, records=tuple(records))


def load_trace(path) -> Trace:
    return Trace.loads(Path(path).read_text(encoding="utf-8"))


def verify_trace(path) -> tuple[bool, str]:
    """Golden-file freshness: regenerate from the embedded spec and
    byte-compare.  Returns ``(fresh, message)``."""
    text = Path(path).read_text(encoding="utf-8")
    trace = Trace.loads(text)
    regenerated = generate_trace(trace.spec).dumps()
    if regenerated == text:
        return True, f"trace is fresh ({len(trace)} requests, seed {trace.spec.seed})"
    return False, (
        "trace file does not match its embedded spec — regenerate it with "
        "`fastbns workload record` (generator or spec changed since it was committed)"
    )


# --------------------------------------------------------------------- #
# generation
# --------------------------------------------------------------------- #
def _zipf_weights(n: int, s: float) -> list[float]:
    return [1.0 / ((rank + 1) ** s) for rank in range(n)]


def generate_trace(spec: WorkloadSpec) -> Trace:
    """Deterministically expand a spec into its trace.

    One ``random.Random(seed)`` stream drives every choice in a fixed
    order and arrival offsets are rounded to microseconds, so the same
    spec always serialises to the same bytes (the property
    :func:`verify_trace` and the committed golden trace rely on).
    """
    rng = random.Random(spec.seed)
    tenants = list(spec.datasets)
    tenant_w = _zipf_weights(len(tenants), spec.zipf_s)
    ops = [k for k, _ in spec.mix]
    op_w = [w for _, w in spec.mix]
    last_learn: dict[str, dict] = {}
    records: list[TraceRecord] = []
    t = 0.0
    for i in range(spec.n_requests):
        if spec.arrival == "uniform":
            gap = 1.0 / spec.rate
        elif spec.arrival == "poisson":
            gap = rng.expovariate(spec.rate)
        else:  # bursty: whole bursts arrive at once, at the same mean rate
            gap = 0.0 if i % spec.burst else rng.expovariate(spec.rate / spec.burst)
        t = round(t + gap, 6)
        tenant = rng.choices(tenants, weights=tenant_w)[0]
        op = rng.choices(ops, weights=op_w)[0]
        inject = rng.random() < spec.error_rate
        alpha = rng.choice(spec.alphas)
        if inject:
            variant = rng.randrange(3)
            if variant == 0:  # in-session validation error
                request = {"op": "learn", "dataset": tenant, "gs": 0}
            elif variant == 1:  # unknown dataset: unrouted error lane
                request = {"op": "learn", "dataset": f"{tenant}::missing"}
            else:  # missing required field
                request = {"op": "blanket", "dataset": tenant}
        elif op == "admin":
            request = {"op": "stats"}
        elif op == "blanket":
            request = {
                "op": "blanket",
                "dataset": tenant,
                "target": rng.randrange(spec.n_targets),
                "alpha": alpha,
            }
        elif op == "relearn" and tenant in last_learn:
            request = dict(last_learn[tenant])  # verbatim repeat: cache hit
        else:  # learn (relearn with no prior learn degenerates here)
            request = {"op": "learn", "dataset": tenant, "alpha": alpha}
            if spec.max_depth is not None:
                request["max_depth"] = spec.max_depth
            last_learn[tenant] = request
        records.append(TraceRecord(index=i, at_s=t, tenant=tenant, request=dict(request)))
    return Trace(spec=spec, records=tuple(records))


# --------------------------------------------------------------------- #
# latency summaries
# --------------------------------------------------------------------- #
def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]) — 0.0 on empty input."""
    if not values:
        return 0.0
    s = sorted(values)
    k = max(1, math.ceil(q / 100.0 * len(s)))
    return s[min(k, len(s)) - 1]


def summarize_latencies(seconds: Sequence[float]) -> dict:
    """p50/p95/p99/max/mean (milliseconds) over latency samples."""
    ms = sorted(v * 1000.0 for v in seconds)
    n = len(ms)
    return {
        "n": n,
        "p50_ms": percentile(ms, 50),
        "p95_ms": percentile(ms, 95),
        "p99_ms": percentile(ms, 99),
        "max_ms": ms[-1] if ms else 0.0,
        "mean_ms": (sum(ms) / n) if ms else 0.0,
    }


# --------------------------------------------------------------------- #
# replay harness
# --------------------------------------------------------------------- #
class WorkloadReport:
    """Responses plus per-request timings of one replay, summarised.

    Latency is *completion* latency — ``t_done - t_in``, worker finish
    minus intake — which is what a tenant experiences under dispatch
    contention and is immune to the head-of-line artifacts of in-order
    yielding.  ``t_yield - t_in`` (client-observed, ordered) is kept in
    the raw ``timings`` for anyone who wants it.
    """

    def __init__(
        self,
        trace: Trace,
        responses: list[dict],
        timings: list[dict],
        wall_s: float,
    ) -> None:
        self.trace = trace
        self.responses = responses
        self.timings = timings
        self.wall_s = float(wall_s)

    # -- scalars ------------------------------------------------------- #
    @property
    def n_requests(self) -> int:
        return len(self.responses)

    @property
    def n_errors(self) -> int:
        return sum(1 for r in self.responses if r.get("error") is not None)

    @property
    def n_cached(self) -> int:
        return sum(1 for r in self.responses if r.get("cached"))

    @property
    def requests_per_s(self) -> float:
        return self.n_requests / self.wall_s if self.wall_s > 0 else 0.0

    # -- latency ------------------------------------------------------- #
    def latencies_s(self) -> list[float]:
        return [t["t_done"] - t["t_in"] for t in self.timings]

    def latency(self) -> dict:
        return summarize_latencies(self.latencies_s())

    def per_tenant(self) -> dict[str, dict]:
        """Latency summary per trace tenant (record order == timing order)."""
        buckets: dict[str, list[float]] = {}
        for rec, t in zip(self.trace.records, self.timings, strict=True):
            buckets.setdefault(rec.tenant, []).append(t["t_done"] - t["t_in"])
        return {tenant: summarize_latencies(v) for tenant, v in sorted(buckets.items())}

    def to_dict(self) -> dict:
        return {
            "trace": self.trace.header(),
            "n_requests": self.n_requests,
            "n_errors": self.n_errors,
            "n_cached": self.n_cached,
            "wall_s": self.wall_s,
            "requests_per_s": self.requests_per_s,
            "latency": self.latency(),
            "per_tenant": self.per_tenant(),
        }


def _paced(trace: Trace) -> Iterator[dict]:
    start = time.monotonic()
    for rec in trace.records:
        delay = rec.at_s - (time.monotonic() - start)
        if delay > 0:
            time.sleep(delay)
        yield rec.request


def replay(
    server: EngineServer,
    trace: Trace,
    *,
    threads: int = 1,
    window: int = DEFAULT_WINDOW,
    pace: bool = False,
) -> WorkloadReport:
    """Replay a trace through a server's streaming dispatcher.

    ``pace=True`` honours the trace's arrival offsets (open-loop load:
    requests arrive on schedule whether or not earlier ones finished);
    the default feeds as fast as the in-flight window admits (closed
    loop — the regression-stable choice for throughput benches).
    """
    timings: list[dict] = []
    requests = _paced(trace) if pace else trace.requests()
    t0 = time.monotonic()
    responses = list(
        server.serve_iter(requests, threads=threads, window=window, timings=timings)
    )
    wall = time.monotonic() - t0
    return WorkloadReport(trace, responses, timings, wall)


def replay_client(client, trace: Trace, *, pace: bool = False) -> WorkloadReport:
    """Replay a trace through an :class:`~repro.engine.client.EngineClient`.

    One thread sends (optionally on the trace schedule), a second reads
    the ordered responses as they arrive.  Concurrent reads matter for
    ``pace=True``: if responses were only drained after the last send, a
    reply served in 5 ms but read 8 s later would *record* 8 s.  Timings
    come from the client's send→recv samples, so latency here includes
    the wire and the server-side window — the end-to-end number a remote
    tenant sees.
    """
    t0 = time.monotonic()
    base = len(client.latencies_s)
    n = len(trace.records)
    responses: list[dict] = []
    recv_failure: list[BaseException] = []

    def _recv_all() -> None:
        try:
            for _ in range(n):
                responses.append(client.recv())
        except BaseException as exc:  # re-raised on the caller's thread
            recv_failure.append(exc)

    reader = threading.Thread(
        target=_recv_all, name="workload-replay-reader", daemon=True
    )
    reader.start()
    sent_at: list[float] = []
    start = time.monotonic()
    for rec in trace.records:
        if pace:
            delay = rec.at_s - (time.monotonic() - start)
            if delay > 0:
                time.sleep(delay)
        sent_at.append(time.monotonic())
        client.send(rec.request)
    reader.join()
    if recv_failure:
        raise recv_failure[0]
    wall = time.monotonic() - t0
    lats = list(client.latencies_s)[base:]
    timings = [
        {
            "lane": rec.tenant,
            "t_in": t_sent,
            "t_start": t_sent,
            "t_done": t_sent + lat,
            "t_yield": t_sent + lat,
        }
        for rec, t_sent, lat in zip(trace.records, sent_at, lats, strict=True)
    ]
    return WorkloadReport(trace, responses, timings, wall)
