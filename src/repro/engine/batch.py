"""Batched query serving over a learning session.

The production framing of the ROADMAP: many clients submit learning
requests against the same dataset — full structure learns at different
significance levels, Markov-blanket queries for different targets — and
most of that traffic is *repeated*.  :class:`BatchServer` is the request
layer that exploits it:

1. every request is normalised (defaults filled, targets resolved to
   indices) and fingerprinted against the session's dataset fingerprint;
2. requests whose fingerprint was already answered — earlier in the same
   batch or in any previous batch — are served from the result cache
   without touching the session;
3. the remainder run on the session, whose sufficient-statistics cache and
   long-lived worker pool make even *non*-identical requests cheap when
   they share tables with earlier ones.

Responses are plain dicts (JSONL-friendly for the ``fastbns batch`` CLI)
and always report ``fingerprint``, ``cached`` and ``elapsed_s`` so a
client can audit what was recomputed.
"""

from __future__ import annotations

import time
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass
from collections.abc import Iterable, Iterator, Mapping

from .fingerprint import request_fingerprint
from .manifest import RunManifest
from .session import LearningSession

__all__ = ["BatchRequest", "BatchServer", "ParseFailure"]


class ParseFailure:
    """A stream framer's stand-in for a line that failed to parse.

    Framers (the CLI's JSONL reader, the socket transport) sit above the
    serving layers and must keep one bad line from tearing down the
    stream *and* from losing its slot in the response order.  They yield
    a ``ParseFailure`` in the line's position; ``handle`` — on both
    :class:`BatchServer` and :class:`~repro.engine.server.EngineServer`
    — turns it into the uniform error response, so even unparseable
    input shows up in the run manifest and comes back in order.
    """

    __slots__ = ("message",)

    def __init__(self, message: str) -> None:
        self.message = str(message)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParseFailure({self.message!r})"

_LEARN_DEFAULTS = {
    "gs": 1,
    "max_depth": None,
    "apply_r4": False,
    "v_structures": "standard",
}
_BLANKET_DEFAULTS = {
    "algorithm": "iamb",
    "max_conditioning": 3,
}


def _as_int(value, what: str) -> int:
    """Coerce a JSON scalar to an int, rejecting bools and fractional
    floats (``int(1.5)`` would silently truncate a client's typo)."""
    if isinstance(value, bool) or (isinstance(value, float) and not value.is_integer()):
        raise ValueError(f"{what}, got {value!r}")
    try:
        return int(value)
    except (TypeError, ValueError):
        raise ValueError(f"{what}, got {value!r}") from None


@dataclass(frozen=True)
class BatchRequest:
    """One normalised request: an operation plus canonical parameters.

    ``params`` is a sorted tuple of ``(key, value)`` pairs so the request
    itself is hashable; equivalent user spellings (key order, omitted
    defaults, target by name vs. index) normalise to the same object and
    therefore the same fingerprint.
    """

    op: str
    params: tuple[tuple[str, object], ...]

    @classmethod
    def normalise(cls, raw: Mapping, session: LearningSession) -> "BatchRequest":
        d = dict(raw)
        op = d.pop("op", None)
        if op not in ("learn", "blanket"):
            raise ValueError(f"request op must be 'learn' or 'blanket', got {op!r}")
        alpha = float(d.pop("alpha", session.alpha))
        if not 0 < alpha < 1:
            raise ValueError("alpha must be in (0, 1)")
        # Result-affecting session config participates in the fingerprint
        # so two runs with differently-configured engines never produce
        # the same fingerprint for non-equivalent results.
        params: dict[str, object] = {
            "alpha": alpha,
            "dof_adjust": session.dof_adjust,
            "test": str(d.pop("test", session.test)) if op == "learn" else session.test,
        }
        if op == "learn":
            for key, default in _LEARN_DEFAULTS.items():
                params[key] = d.pop(key, default)
            # "auto" engages the adaptive group scheduler; note the spelling
            # participates in the fingerprint as-is — an auto request and a
            # fixed-gs request are distinct cache keys even though their
            # results are bit-identical (the conservative choice).
            # Bounds mirror ``cli._gs_argument``: rejecting gs=0 / negative
            # depths here turns a deep ``learn_skeleton`` ValueError
            # mid-compute into a clean ``error`` response at intake.
            if params["gs"] != "auto":
                params["gs"] = _as_int(params["gs"], "gs must be a positive int or 'auto'")
                if params["gs"] < 1:
                    raise ValueError(f"gs must be >= 1 or 'auto', got {params['gs']}")
            md = params["max_depth"]
            if md is not None:
                md = _as_int(md, "max_depth must be a non-negative int or null")
                if md < 0:
                    raise ValueError(f"max_depth must be >= 0, got {md}")
            params["max_depth"] = md
            params["apply_r4"] = bool(params["apply_r4"])
            if params["v_structures"] not in ("standard", "conservative", "majority"):
                raise ValueError(
                    f"unknown v_structures rule {params['v_structures']!r}"
                )
        else:
            target = d.pop("target", None)
            if target is None:
                raise ValueError("blanket request needs a 'target'")
            if isinstance(target, str):
                target = session.dataset.index_of(target)
            else:
                target = _as_int(target, "target must be a variable name or index")
            if not 0 <= target < session.dataset.n_variables:
                raise ValueError(
                    f"target index {target} out of range for "
                    f"{session.dataset.n_variables} variables"
                )
            params["target"] = target
            for key, default in _BLANKET_DEFAULTS.items():
                params[key] = d.pop(key, default)
            mc = params["max_conditioning"]
            if mc is not None:
                mc = _as_int(mc, "max_conditioning must be a non-negative int or null")
                if mc < 0:
                    raise ValueError(f"max_conditioning must be >= 0, got {mc}")
            params["max_conditioning"] = mc
        if d:
            raise ValueError(f"unknown request fields for op {op!r}: {sorted(d)}")
        return cls(op=op, params=tuple(sorted(params.items())))

    def param_dict(self) -> dict:
        return dict(self.params)

    def fingerprint(self, dataset_fp: str) -> str:
        return request_fingerprint(dataset_fp, self.op, self.param_dict())


class BatchServer:
    """Serve streams of learn/blanket requests over one session.

    The result cache is unbounded by design — payloads are edge lists and
    counters, orders of magnitude smaller than the stats cache's tables;
    a production deployment would bound it the same LRU way.
    """

    def __init__(self, session: LearningSession, store=None) -> None:
        self.session = session
        # Default to the session's store so `LearningSession(store=...)`
        # alone is enough to make the batch layer durable.
        self.store = store if store is not None else getattr(session, "store", None)
        self._results: dict[str, dict] = {}
        self.n_requests = 0
        self.n_computed = 0
        self.n_result_hits = 0
        self.n_store_hits = 0
        self.n_errors = 0

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    def handle(self, raw: Mapping | BatchRequest) -> dict:
        """Serve one request; repeat fingerprints return the cached payload.

        A malformed request (unknown op/field, bad target, invalid
        parameter) yields an ``error`` response instead of aborting the
        stream — one client's bad request must not take down the batch.

        Every response carries the same keys — ``op``, ``fingerprint``,
        ``cached``, ``elapsed_s``, ``result``, ``error`` — with exactly one
        of ``result``/``error`` non-``None``, so JSONL consumers switch on
        the ``error`` *value* instead of probing for key presence.
        """
        self.n_requests += 1
        t0 = time.perf_counter()
        if isinstance(raw, ParseFailure):
            self.n_errors += 1
            return {
                "op": None,
                "fingerprint": None,
                "cached": False,
                "elapsed_s": time.perf_counter() - t0,
                "result": None,
                "error": raw.message,
            }
        try:
            req = (
                raw
                if isinstance(raw, BatchRequest)
                else BatchRequest.normalise(raw, self.session)
            )
            fp = req.fingerprint(self.session.fingerprint)
            payload = self._results.get(fp)
            cached = payload is not None
            if cached:
                self.n_result_hits += 1
            else:
                if self.store is not None:
                    payload = self.store.get_result(fp)
                if payload is not None:
                    # A durable hit is a result-cache hit for accounting
                    # (`cached: true` in the response, exact manifest
                    # totals); n_store_hits separates warm-restart reuse
                    # from same-process repeats.
                    self._results[fp] = payload
                    cached = True
                    self.n_result_hits += 1
                    self.n_store_hits += 1
                else:
                    payload = self._compute(req)
                    self._results[fp] = payload
                    self.n_computed += 1
                    if self.store is not None:
                        self.store.put_result(
                            fp, self.session.fingerprint, req.op, payload
                        )
        except (ValueError, KeyError, TypeError, OSError, BrokenExecutor) as exc:
            # OSError: shm exhaustion / transport failures surfaced by a
            # use_shm=True session.  BrokenExecutor: a pool worker died
            # mid-compute (the session already dropped the pool so the
            # next request respawns it).  Both become the same clean
            # error response every other failure gets.
            self.n_errors += 1
            op = raw.get("op") if isinstance(raw, Mapping) else raw.op
            return {
                "op": op if op in ("learn", "blanket") else None,
                "fingerprint": None,
                "cached": False,
                "elapsed_s": time.perf_counter() - t0,
                "result": None,
                "error": str(exc),
            }
        return {
            "op": req.op,
            "fingerprint": fp,
            "cached": cached,
            "elapsed_s": time.perf_counter() - t0,
            "result": payload,
            "error": None,
        }

    def serve_iter(
        self, requests: Iterable[Mapping | BatchRequest], manifest: RunManifest | None = None
    ) -> Iterator[dict]:
        """Serve a request stream lazily, recording into ``manifest``.

        A generator so the CLI can emit each response (and the manifest
        can account for it) as soon as it is computed — an interrupted
        run keeps everything served up to the interrupt.
        """
        for raw in requests:
            resp = self.handle(raw)
            if manifest is not None:
                manifest.add_request(
                    resp["op"],
                    resp["fingerprint"],
                    resp["cached"],
                    resp["elapsed_s"],
                    error=resp["error"],
                )
            yield resp

    def serve(
        self, requests: Iterable[Mapping | BatchRequest], manifest: RunManifest | None = None
    ) -> list[dict]:
        """Serve a request stream in order, recording into ``manifest``."""
        return list(self.serve_iter(requests, manifest=manifest))

    def new_manifest(self, journal=None) -> RunManifest:
        s = self.session
        return RunManifest(
            dataset_fingerprint=s.fingerprint,
            engine={
                "test": s.test,
                "alpha": s.alpha,
                "dof_adjust": s.dof_adjust,
                "n_jobs": s.n_jobs,
                "backend": s.backend,
                "cache_bytes": s.cache_bytes,
            },
            journal=journal,
        )

    def stats(self) -> dict:
        out = {
            "n_requests": self.n_requests,
            "n_computed": self.n_computed,
            "n_result_cache_hits": self.n_result_hits,
            "n_errors": self.n_errors,
            "stats_cache": self.session.cache_stats().as_dict(),
        }
        if self.store is not None:
            out["store"] = {
                "n_store_result_hits": self.n_store_hits,
                "n_skeleton_loads": self.session.n_skeleton_loads,
                "n_skeleton_learns": self.session.n_skeleton_learns,
            }
        return out

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def _compute(self, req: BatchRequest) -> dict:
        p = req.param_dict()
        names = self.session.names
        if req.op == "learn":
            result = self.session.learn(
                alpha=p["alpha"],
                test=p["test"],
                gs=p["gs"],
                max_depth=p["max_depth"],
                apply_r4=p["apply_r4"],
                v_structures=p["v_structures"],
            )
            return {
                "n_variables": len(names),
                "skeleton_edges": result.skeleton.n_edges,
                "directed": sorted(
                    [names[u], names[v]] for u, v in result.cpdag.directed_edges()
                ),
                "undirected": sorted(
                    [names[u], names[v]] for u, v in result.cpdag.undirected_edges()
                ),
                "n_ci_tests": result.n_ci_tests,
            }
        result = self.session.markov_blanket(
            p["target"],
            algorithm=p["algorithm"],
            alpha=p["alpha"],
            max_conditioning=p["max_conditioning"],
        )
        return {
            "target": names[result.target],
            "blanket": sorted(names[v] for v in result.blanket),
            "n_tests": result.n_tests,
        }
