"""Sufficient-statistics cache for CI testing.

Every CI test the paper runs re-scans the dataset to fill a contingency
table — ``m * (d + 2)`` data accesses per test (Sec. IV-D).  Across a
*stream* of learning requests on the same dataset (different alphas, group
sizes, blanket targets) the vast majority of those tables are rebuilt
identically, because the table over a variable tuple does not depend on any
test parameter.  :class:`SufficientStatsCache` memoizes those tables:

* entries are keyed by variable tuples (conditioning set + endpoints) and
  hold the exact ``(nz, rx, ry)`` count array the uncached path would have
  built (construction is shared with the testers through
  :func:`repro.citests.contingency.ci_counts`, so hits are bit-identical);
* a byte-budgeted LRU bounds memory: every ``get`` refreshes recency and
  every ``put`` evicts from the cold end until the budget holds;
* dense (uncompressed) tables double as *sufficient statistics* for every
  sub-tuple: a query whose variables form a subset of a cached dense
  entry's is answered by exact marginalization instead of a data scan
  (``m``-free — the AD-tree trick, specialised to the PC-stable workload
  where shrink phases and relearns test subsets of earlier tuples);
* encoded conditioning-set codes are cached too, so a miss that shares its
  conditioning set with an earlier test (the Markov-blanket grow pattern:
  same ``S``, sweeping ``y``) skips the mixed-radix re-encoding;
* the batched group kernel lands all tables of one offset-stacked build
  through :meth:`SufficientStatsCache.put_many` — one lock acquisition and
  one eviction sweep per group instead of one per table.

Hit/miss/eviction/byte counters are exact and feed both
:class:`~repro.citests.base.CITestCounters` and the Table IV simulated
perf-counter path.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from collections.abc import Hashable, Iterable, Sequence

import numpy as np

from ..citests.contingency import ci_counts, encode_columns, marginalize_table
from ..datasets.dataset import DiscreteDataset

__all__ = ["CacheStats", "SufficientStatsCache", "CachedTableBuilder"]

#: Placeholder value of a reserved-but-not-yet-built table entry.  The
#: batched group path reserves cache slots in exact looped order during
#: planning (so LRU recency, evictions and hit/miss counters are
#: bit-identical to per-set evaluation), builds all tables with one
#: stacked bincount, then fills the surviving slots.  Pending entries are
#: transient — they exist only while one group evaluation is in flight.
_PENDING = object()

DEFAULT_BUDGET_BYTES = 64 << 20  # 64 MiB

#: Cap on how many resident tables one superset-marginalization lookup may
#: scan; keeps the miss path O(1)-ish even with thousands of entries.
_SUPERSET_SCAN_LIMIT = 256


@dataclass(frozen=True)
class CacheStats:
    """Immutable snapshot of the cache's exact work counters."""

    hits: int
    misses: int
    marginal_builds: int
    evictions: int
    puts: int
    current_bytes: int
    max_bytes: int
    n_entries: int
    # Spill-tier counters (all zero, and omitted from as_dict, unless a
    # store's spill tier is attached): stores = entries demoted to disk on
    # eviction, hits/promotes = looked-up entries restored into memory,
    # misses = memory misses the tier could not serve either.
    spill_enabled: bool = False
    spill_stores: int = 0
    spill_hits: int = 0
    spill_misses: int = 0
    spill_promotes: int = 0
    spill_entries: int = 0
    spill_bytes: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, float | int]:
        out = {
            "hits": self.hits,
            "misses": self.misses,
            "marginal_builds": self.marginal_builds,
            "evictions": self.evictions,
            "puts": self.puts,
            "current_bytes": self.current_bytes,
            "max_bytes": self.max_bytes,
            "n_entries": self.n_entries,
            "hit_rate": self.hit_rate,
        }
        if self.spill_enabled:
            out["spill"] = {
                "stores": self.spill_stores,
                "hits": self.spill_hits,
                "misses": self.spill_misses,
                "promotes": self.spill_promotes,
                "entries": self.spill_entries,
                "bytes": self.spill_bytes,
            }
        return out


@dataclass
class _Entry:
    value: object
    nbytes: int
    kind: str  # "table" | "codes"
    varset: frozenset[int] | None = None  # variables covered (tables only)
    dims: tuple[int, ...] = ()  # per-variable arities, entry-key order
    dense: bool = True  # first axis covers all structural configs


def _is_pending(entry: _Entry) -> bool:
    """True for a reserved-but-unfilled group slot (identity sentinel —
    meaningless outside its group evaluation, so never spilled)."""
    value = entry.value
    return isinstance(value, tuple) and bool(value) and value[0] is _PENDING


class SufficientStatsCache:
    """Byte-budgeted LRU cache of contingency tables and column encodings.

    The cache itself is dataset-agnostic (keys are opaque); binding to a
    concrete dataset — and the marginalization/encoding reuse logic — lives
    in :class:`CachedTableBuilder`.  One cache instance may be shared by
    any number of testers over the *same* dataset (that invariant is the
    caller's: :class:`~repro.engine.session.LearningSession` owns exactly
    one dataset and one cache).
    """

    def __init__(self, max_bytes: int = DEFAULT_BUDGET_BYTES, *, spill=None) -> None:
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        self.max_bytes = int(max_bytes)
        self._entries: OrderedDict[Hashable, _Entry] = OrderedDict()
        # Guards the entry map and byte accounting; uncontended in the
        # per-process/per-session setups, but lets thread-backend testers
        # share one cache, and gives put_many its single-acquisition bulk
        # insert.  (Counters are plain ints — GIL-atomic increments.)
        self._lock = threading.Lock()
        # Optional disk tier (repro.engine.store.SpillTier): evictions
        # demote real entries instead of dropping them, and a miss whose
        # key is spilled promotes it back — bit-identical, since tables
        # are pure functions of their keys.  None keeps every code path
        # and counter exactly as without a store.
        self._spill = spill
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.marginal_builds = 0
        self.evictions = 0
        self.puts = 0
        self.spill_stores = 0
        self.spill_hits = 0
        self.spill_misses = 0
        self.spill_promotes = 0

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        del state["_lock"]  # locks don't pickle; workers get a fresh one
        state["_spill"] = None  # the disk tier (SQLite conn) stays home
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # generic LRU plumbing
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable, *, count: bool = True) -> _Entry | None:
        """Fetch an entry, refreshing its recency.

        ``count=False`` suppresses the hit/miss accounting — used by
        internal probes (e.g. the encoding lookup) so that the public
        hit/miss counters track *tables* exactly, one event per CI test.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                entry = self._promote_locked(key)
                if entry is None:
                    if count:
                        self.misses += 1
                    return None
            else:
                self._entries.move_to_end(key)
        if count:
            self.hits += 1
        return entry

    def _promote_locked(self, key: Hashable) -> "_Entry | None":
        """Restore a spilled entry into memory; None without a spill hit.

        The probe is an O(1) set lookup against the tier's key index, so
        streams that never spilled pay nothing here; an actual promote
        re-admits the entry at the hot end (it is live traffic) and then
        re-balances the budget — which may demote colder entries in turn.
        """
        if self._spill is None:
            return None
        if not self._spill.has(key):
            self.spill_misses += 1
            return None
        fields = self._spill.get(key)
        if fields is None:  # phantom index entry / undecodable blob
            self.spill_misses += 1
            return None
        self.spill_hits += 1
        value, nbytes, kind, varset, dims, dense = fields
        entry = _Entry(value, int(nbytes), kind, varset, tuple(dims), dense)
        self._entries[key] = entry
        self.current_bytes += entry.nbytes
        self.spill_promotes += 1
        self._evict_locked()
        return entry

    def put(
        self,
        key: Hashable,
        value: object,
        nbytes: int,
        kind: str = "table",
        varset: frozenset[int] | None = None,
        dims: tuple[int, ...] = (),
        dense: bool = True,
    ) -> None:
        """Insert (or replace) an entry and evict until the budget holds.

        An entry larger than the whole budget is not admitted at all —
        caching it would immediately evict everything else for a value
        that can never be re-served within budget.
        """
        with self._lock:
            self._insert_locked(key, value, nbytes, kind, varset, dims, dense)
            self._evict_locked()

    def put_many(self, entries: Iterable[tuple]) -> None:
        """Bulk insert under one lock acquisition and one eviction sweep.

        ``entries`` holds ``(key, value, nbytes, kind, varset, dims,
        dense)`` tuples — the :meth:`put` signature.  Deferring eviction
        to one end-of-batch sweep yields the same final contents and
        eviction count as per-entry puts (eviction always pops the cold
        end, and fresh inserts are hottest).
        """
        with self._lock:
            for key, value, nbytes, kind, varset, dims, dense in entries:
                self._insert_locked(key, value, nbytes, kind, varset, dims, dense)
            self._evict_locked()

    def fill_many(self, items: Iterable[tuple[Hashable, object]]) -> None:
        """Set the values of still-resident entries in one critical section.

        This is the landing path of the batched group kernel: slots were
        reserved (with exact sizes) in looped order during planning, all
        tables were then built by one offset-stacked bincount, and here
        every table whose slot survived lands in the cache under a single
        lock acquisition.  No recency, byte or counter effects — those
        happened at reservation time, exactly where the looped path would
        have paid them; entries evicted since reservation are skipped.
        """
        with self._lock:
            for key, value in items:
                entry = self._entries.get(key)
                if entry is not None:
                    entry.value = value

    def _insert_locked(
        self,
        key: Hashable,
        value: object,
        nbytes: int,
        kind: str,
        varset: frozenset[int] | None,
        dims: tuple[int, ...],
        dense: bool,
    ) -> None:
        nbytes = int(nbytes)
        old = self._entries.pop(key, None)
        if old is not None:
            self.current_bytes -= old.nbytes
        if nbytes > self.max_bytes:
            return
        self._entries[key] = _Entry(value, nbytes, kind, varset, dims, dense)
        self.current_bytes += nbytes
        self.puts += 1

    def _evict_locked(self) -> None:
        while self.current_bytes > self.max_bytes and self._entries:
            key, evicted = self._entries.popitem(last=False)
            self.current_bytes -= evicted.nbytes
            self.evictions += 1
            if self._spill is not None and not _is_pending(evicted):
                # Demote instead of drop: the entry lands on disk and a
                # later lookup promotes it back, bit-identical.  Pending
                # group reservations are transient and never spill.
                if self._spill.put(
                    key,
                    evicted.value,
                    evicted.nbytes,
                    evicted.kind,
                    evicted.varset,
                    evicted.dims,
                    evicted.dense,
                ):
                    self.spill_stores += 1

    def discard(self, key: Hashable) -> None:
        """Remove one entry (no-op when absent); no hit/miss effects."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is not None:
                self.current_bytes -= entry.nbytes

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.current_bytes = 0

    def stats(self) -> CacheStats:
        spill = self._spill.stats() if self._spill is not None else None
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            marginal_builds=self.marginal_builds,
            evictions=self.evictions,
            puts=self.puts,
            current_bytes=self.current_bytes,
            max_bytes=self.max_bytes,
            n_entries=len(self._entries),
            spill_enabled=spill is not None,
            spill_stores=self.spill_stores,
            spill_hits=self.spill_hits,
            spill_misses=self.spill_misses,
            spill_promotes=self.spill_promotes,
            spill_entries=0 if spill is None else spill["entries"],
            spill_bytes=0 if spill is None else spill["bytes"],
        )

    # ------------------------------------------------------------------ #
    # superset search (marginalization source)
    # ------------------------------------------------------------------ #
    def find_dense_superset(
        self, want: frozenset[int]
    ) -> tuple[tuple[int, ...], _Entry] | None:
        """Most-recently-used dense table whose variables cover ``want``.

        Scans from the hot end (recent entries are the likeliest parents of
        the current query) and gives up after ``_SUPERSET_SCAN_LIMIT``
        tables so a miss stays cheap.
        """
        scanned = 0
        with self._lock:
            for key, entry in reversed(self._entries.items()):
                if entry.kind != "table":
                    continue
                scanned += 1
                if scanned > _SUPERSET_SCAN_LIMIT:
                    return None
                if entry.dense and entry.varset is not None and want <= entry.varset:
                    # The superset is live traffic: refresh its recency so a
                    # hot parent table is not evicted in favour of the small
                    # marginals it keeps spawning.
                    self._entries.move_to_end(key)
                    return key, entry  # type: ignore[return-value]
        return None


class CachedTableBuilder:
    """Dataset-bound front door of the stats cache for the CI testers.

    ``ci_counts(x, y, s)`` returns exactly what the uncached tester path
    would compute — ``(counts, nz_structural, from_cache, z_cached,
    xy_cached)`` — resolving in order: direct key hit, exact
    marginalization of a cached dense superset, fresh build.  Column
    encodings (the ``(x, y)`` cell codes and the conditioning-set codes)
    are themselves cached and only materialised on a table miss, so a hit
    really does touch zero data; the two ``*_cached`` flags report the
    reuse so the work counters bill only the columns actually read.
    Fresh builds and marginals are inserted back so later queries hit
    directly.
    """

    def __init__(
        self,
        dataset: DiscreteDataset,
        cache: SufficientStatsCache,
        compress_threshold: int = 4,
    ) -> None:
        self.dataset = dataset
        self.cache = cache
        self.compress_threshold = int(compress_threshold)

    # Keys: ("t", v0, v1, ..., x, y) for tables (conditioning vars first,
    # endpoints last — the table's axis order), ("e", v0, v1, ...) for
    # encoded conditioning columns, ("xy", x, y) for endpoint cell codes.
    @staticmethod
    def table_key(x: int, y: int, s: tuple[int, ...]) -> tuple:
        return ("t",) + s + (x, y)

    @staticmethod
    def codes_key(s: tuple[int, ...]) -> tuple:
        return ("e",) + s

    @staticmethod
    def xy_key(x: int, y: int) -> tuple:
        return ("xy", x, y)

    def lookup(
        self, x: int, y: int, s: tuple[int, ...]
    ) -> tuple[str, object]:
        """Resolve a table request against the cache, pending-aware.

        Returns one of::

            ("hit", (counts, nz_structural))   # resident table (direct or
                                               # marginalized from a dense
                                               # resident superset; the
                                               # marginal is stored)
            ("pending", src_table_key)         # direct hit on a slot some
                                               # in-flight group evaluation
                                               # reserved but has not built
            ("pending_marg", src_table_key)    # covered by a reserved slot:
                                               # the marginal's own slot is
                                               # reserved here, its value
                                               # arrives with the group fill
            ("miss", None)

        Pending payloads are **full table keys** (tag + variables +
        endpoints), because the fused multi-group engine can resolve a
        request against a slot reserved for a *different* endpoint pair —
        the set-tuple alone no longer identifies the source.

        Successful resolutions count one cache hit (plus one marginal
        build for the superset cases) and refresh recency, exactly like
        per-set evaluation; a miss leaves the counters untouched — the
        caller decides how it is built and accounts it.
        """
        ds = self.dataset
        key = self.table_key(x, y, s)
        entry = self.cache.get(key, count=False)
        if entry is not None:
            self.cache.hits += 1
            value = entry.value
            if value[0] is _PENDING:  # type: ignore[index]
                return "pending", key
            return "hit", value

        want = frozenset(s) | {x, y}
        found = self.cache.find_dense_superset(want)
        if found is not None:
            src_key, src_entry = found
            self.cache.hits += 1
            self.cache.marginal_builds += 1
            if src_entry.value[0] is _PENDING:  # type: ignore[index]
                # The covering table is this group's own pending build:
                # reserve the marginal's slot now (the looped path would
                # store the marginal at this position) and let the group
                # fill deliver its value.
                self.reserve(x, y, s)
                return "pending_marg", src_key
            rx, ry = ds.arity(x), ds.arity(y)
            rz = [ds.arity(v) for v in s]
            counts, nz_structural = self._from_superset(src_key, src_entry, x, y, s, rx, ry, rz)
            self._store(key, counts, nz_structural, x, y, s, rx, ry, rz, dense=True)
            return "hit", (counts, nz_structural)
        return "miss", None

    def reserve(self, x: int, y: int, s: tuple[int, ...]) -> None:
        """Reserve a dense table's cache slot before its batched build.

        The placeholder carries the exact size (``nz * rx * ry`` int64
        cells — what ``np.bincount`` will produce) and full metadata, so
        recency, evictions and superset visibility behave exactly as if
        the looped path had stored the real table at this position.  The
        value lands later through :meth:`SufficientStatsCache.fill_many`;
        an oversized reservation is rejected like any oversized put.
        """
        ds = self.dataset
        rx, ry = ds.arity(x), ds.arity(y)
        rz = tuple(ds.arity(v) for v in s)
        nz_structural = 1
        for a in rz:
            nz_structural *= int(a)
        self.cache.put(
            self.table_key(x, y, s),
            (_PENDING, nz_structural),
            nz_structural * rx * ry * 8,
            kind="table",
            varset=frozenset(s) | {x, y},
            dims=rz + (rx, ry),
            dense=True,
        )

    def discard_pending(self, x: int, y: int, sets: Sequence[tuple[int, ...]]) -> None:
        """Drop any still-pending reservations for the given sets.

        Abort path of a batched group evaluation: placeholders that never
        received their fill must not outlive the group, or later lookups
        would trip over them.  Filled (real) entries are left alone.
        """
        for s in sets:
            key = self.table_key(x, y, s)
            entry = self.cache._entries.get(key)
            if entry is not None and entry.value[0] is _PENDING:  # type: ignore[index]
                self.cache.discard(key)

    def compute_marginal(
        self,
        x: int,
        y: int,
        src_s: tuple[int, ...],
        src_counts: np.ndarray,
        s: tuple[int, ...],
    ) -> tuple[np.ndarray, int]:
        """Marginal of an in-group dense table down to ``(s, x, y)``
        (source shares the endpoints; see :meth:`marginal_from_key`)."""
        return self.marginal_from_key(self.table_key(x, y, src_s), src_counts, x, y, s)

    def marginal_from_key(
        self,
        src_key: tuple,
        src_counts: np.ndarray,
        x: int,
        y: int,
        s: tuple[int, ...],
    ) -> tuple[np.ndarray, int]:
        """Marginal of a dense table (named by its full key) down to
        ``(s, x, y)``.

        The source may come from *any* endpoint pair — the fused
        multi-group engine marginalizes across groups, where the covering
        table's endpoints ``(x', y')`` differ from the query's.  Pure
        computation: hit/marginal accounting and the slot reservation
        already happened in :meth:`lookup` at planning time.
        """
        ds = self.dataset
        rx, ry = ds.arity(x), ds.arity(y)
        rz = [ds.arity(v) for v in s]
        src_vars = src_key[1:]  # strip the "t" tag: conditioning vars + endpoints
        entry = _Entry(
            value=(src_counts, 0),
            nbytes=src_counts.nbytes,
            kind="table",
            varset=frozenset(src_vars),
            dims=tuple(ds.arity(v) for v in src_vars),
            dense=True,
        )
        return self._from_superset(src_key, entry, x, y, s, rx, ry, rz)

    def ci_counts(
        self,
        x: int,
        y: int,
        s: tuple[int, ...],
        xy_codes: np.ndarray | None = None,
        known_miss: bool = False,
    ) -> tuple[np.ndarray, int, bool, bool, bool]:
        """Resolve-or-build; ``known_miss=True`` skips the cache lookup
        when the caller has just performed it (the batched group planner's
        compressed-set fallback)."""
        ds = self.dataset
        rx, ry = ds.arity(x), ds.arity(y)
        rz = [ds.arity(v) for v in s]

        if not known_miss:
            status, payload = self.lookup(x, y, s)
            if status == "hit":
                counts, nz_structural = payload  # type: ignore[misc]
                return counts, nz_structural, True, True, True
            # "pending"/"pending_marg" outside a group evaluation can only
            # be a stale placeholder from an aborted group that escaped
            # cleanup: fall through and rebuild — the store below replaces
            # the placeholder, self-healing the slot.

        self.cache.misses += 1
        z_cached = False
        z_codes = None
        if s:
            z_codes, z_cached = self.encoded_z(s, rz)
        xy_cached = xy_codes is not None  # caller already paid for them
        if xy_codes is None:
            xy_codes, xy_cached = self.encoded_xy(x, y, ry)
        counts, nz_structural, dense = ci_counts(
            ds.column(x),
            ds.column(y),
            ds.columns(s) if z_codes is None else [],
            rx,
            ry,
            rz,
            compress_threshold=self.compress_threshold,
            xy_codes=xy_codes,
            z_codes=z_codes,
        )
        self._store(
            self.table_key(x, y, s), counts, nz_structural, x, y, s, rx, ry, rz, dense=dense
        )
        return counts, nz_structural, False, z_cached, xy_cached


    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _store(
        self,
        key: tuple,
        counts: np.ndarray,
        nz_structural: int,
        x: int,
        y: int,
        s: tuple[int, ...],
        rx: int,
        ry: int,
        rz: list[int],
        dense: bool,
    ) -> None:
        self.cache.put(
            key,
            (counts, nz_structural),
            counts.nbytes,
            kind="table",
            varset=frozenset(s) | {x, y},
            dims=tuple(rz) + (rx, ry),
            dense=dense,
        )

    def _from_superset(
        self,
        src_key: tuple,
        entry: _Entry,
        x: int,
        y: int,
        s: tuple[int, ...],
        rx: int,
        ry: int,
        rz: list[int],
    ) -> tuple[np.ndarray, int]:
        """Marginalize a cached dense joint down to the requested tuple.

        The source key's variable order *is* its axis order (conditioning
        vars then endpoints), so axis positions come straight from the key.
        """
        src_vars = src_key[1:]  # strip the "t" tag
        pos = {v: i for i, v in enumerate(src_vars)}
        keep = [pos[v] for v in s] + [pos[x], pos[y]]
        table, _src_nz = entry.value  # type: ignore[misc]
        marg = marginalize_table(table, entry.dims, keep)
        nz_structural = 1
        for a in rz:
            nz_structural *= int(a)
        return marg.reshape(nz_structural, rx, ry), nz_structural

    def encoded_z(self, s: tuple[int, ...], rz: Sequence[int]) -> tuple[np.ndarray, bool]:
        """Pre-compression mixed-radix codes of the conditioning columns,
        cached so same-``S``-different-endpoints streams encode once.

        Returns ``(codes, from_cache)``; the flag lets the caller bill
        data accesses only for encodings that actually read the columns.
        """
        key = self.codes_key(s)
        entry = self.cache.get(key, count=False)
        if entry is not None:
            return entry.value, True  # type: ignore[return-value]
        codes, _ = encode_columns(self.dataset.columns(s), list(rz))
        self.cache.put(key, codes, codes.nbytes, kind="codes")
        return codes, False

    def encoded_xy(self, x: int, y: int, ry: int) -> tuple[np.ndarray, bool]:
        """Endpoint cell codes ``x * ry + y``, cached per ``(x, y)`` pair
        so a warm path never re-reads the endpoint columns either."""
        key = self.xy_key(x, y)
        entry = self.cache.get(key, count=False)
        if entry is not None:
            return entry.value, True  # type: ignore[return-value]
        ds = self.dataset
        codes = ds.column(x).astype(np.int64) * ry + ds.column(y)
        self.cache.put(key, codes, codes.nbytes, kind="codes")
        return codes, False
