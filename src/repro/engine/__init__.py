"""repro.engine — persistent learning sessions and batched query serving.

The paper's algorithms (and the seed reproduction) treat every learn or
blanket call as a cold start: fresh contingency tables, fresh worker pool.
This subsystem makes runs first-class, reusable objects:

* :class:`SufficientStatsCache` — byte-budgeted LRU of contingency tables
  keyed by variable tuples, with exact hit/miss/byte counters and
  marginalization of cached dense tables (see :mod:`.statscache`);
* :class:`LearningSession` — one dataset + one cache + one long-lived
  worker pool serving ``learn`` / ``relearn`` / ``markov_blanket`` calls;
* :class:`BatchServer` — request-level layer that fingerprints, dedupes
  and serves streams of requests (the ``fastbns batch`` CLI);
* :class:`EngineServer` — multi-dataset layer above both: an LRU-bounded
  registry of sessions keyed by dataset fingerprint, created on first
  touch from registered :class:`DatasetSource`\\ s, with a thread-based
  dispatcher that overlaps different datasets while serialising
  per-session access (the ``fastbns serve`` CLI; see :mod:`.server`);
* :class:`RunManifest` — auditable per-run artifact (one per session,
  merged across sessions by the server's run document);
* :class:`EngineStore` — durable content-addressed persistence behind
  one SQLite file: request-fingerprint result cache, skeleton blobs, a
  disk spill tier under the stats cache, and a per-response manifest
  journal, giving warm restarts with byte-identical payloads
  (``fastbns batch/serve --store PATH``; see :mod:`.store`);
* :class:`EngineTransport` / :class:`EngineClient` — a threaded TCP /
  Unix-socket front end speaking the same JSONL protocol, one streaming
  dispatcher (:meth:`EngineServer.serve_iter <.server.EngineServer.serve_iter>`)
  per connection with ordered responses, a bounded in-flight window and
  graceful drain on shutdown (the ``fastbns serve --listen`` CLI; see
  :mod:`.transport`), plus the matching line-protocol client;
* :mod:`.routing` — the shared routing/placement layer: the weighted
  deficit-round-robin :class:`LaneScheduler` both serve planes dispatch
  through, and the consistent-hash :class:`HashRing` that places dataset
  content fingerprints on worker processes;
* :class:`ProcessPlane` — the multi-process serve plane (``fastbns serve
  --processes N``): a router process passes accepted connection fds to
  ``N`` forked serve workers (or lets the kernel balance accepts via
  ``SO_REUSEPORT``), each worker owning the sessions for its ring shard,
  its own store shard and manifest-journal run id, with cross-worker
  request forwarding, worker respawn, and a merged run manifest whose
  totals are the exact sum of the per-worker parts (see
  :mod:`.procserve`);
* :mod:`.workload` — deterministic seeded trace generation (zipf tenant
  skew, bursty/poisson arrivals, mixed op profiles, error injection), a
  JSONL golden-trace format, and the replay/latency harness reporting
  p50/p95/p99 SLOs (the ``fastbns workload`` CLI);
* :mod:`.faults` — named fault-injection sites and process-fault helpers
  so the fault drills in ``tests/test_faults.py`` exercise production
  error paths, not mocks.

Resource lifecycle: a session is a context manager, and *everything* it
owns rides its ``close()`` — the worker pool shuts down, and with it the
shared-memory dataset plane the pool exported for its workers
(:mod:`repro.datasets.shm`; the blocks are unlinked exactly once, with a
finalizer backstop for crashed runs).  Sessions on platforms without
usable shared memory, or constructed with ``use_shm=False``, ship the
dataset to workers by pickling instead; results are bit-identical either
way, so the fallback is purely a memory/start-up trade.  ``gs="auto"`` on
:meth:`LearningSession.learn <.session.LearningSession.learn>` (and in
batch requests) engages the adaptive group scheduler
(:mod:`repro.parallel.adaptive`) on the parallel path.
"""

from .batch import BatchRequest, BatchServer
from .client import EngineClient
from .faults import FaultInjector, injector
from .fingerprint import dataset_fingerprint, request_fingerprint
from .manifest import (
    RunManifest,
    merge_totals,
    recovered_manifest_doc,
    shutdown_doc,
)
from .procserve import ProcessPlane, WorkerForwarder
from .routing import HashRing, LaneScheduler
from .server import DatasetSource, EngineServer, ParseFailure
from .session import LearningSession
from .statscache import CachedTableBuilder, CacheStats, SufficientStatsCache
from .store import EngineStore
from .transport import EngineTransport, LineStream
from .workload import (
    Trace,
    WorkloadReport,
    WorkloadSpec,
    generate_trace,
    load_trace,
    replay,
    replay_client,
    summarize_latencies,
    verify_trace,
)

__all__ = [
    "SufficientStatsCache",
    "CachedTableBuilder",
    "CacheStats",
    "LearningSession",
    "BatchServer",
    "BatchRequest",
    "EngineServer",
    "EngineStore",
    "EngineTransport",
    "EngineClient",
    "LineStream",
    "DatasetSource",
    "ParseFailure",
    "ProcessPlane",
    "WorkerForwarder",
    "HashRing",
    "LaneScheduler",
    "RunManifest",
    "merge_totals",
    "recovered_manifest_doc",
    "shutdown_doc",
    "dataset_fingerprint",
    "request_fingerprint",
    "WorkloadSpec",
    "Trace",
    "WorkloadReport",
    "generate_trace",
    "load_trace",
    "verify_trace",
    "replay",
    "replay_client",
    "summarize_latencies",
    "FaultInjector",
    "injector",
]
