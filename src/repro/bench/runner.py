"""Timing helpers for the benchmark harness."""

from __future__ import annotations

import time
from dataclasses import dataclass
from collections.abc import Callable
from typing import TypeVar

__all__ = ["Timing", "time_call"]

T = TypeVar("T")


@dataclass(frozen=True)
class Timing:
    """Best-of-N wall-clock measurement."""

    best_s: float
    mean_s: float
    repeats: int


def time_call(fn: Callable[[], T], repeats: int = 3) -> tuple[T, Timing]:
    """Run ``fn`` ``repeats`` times; returns the last result and timings.

    Best-of-N is the standard defence against OS noise for sub-second
    measurements (the guides' "no optimisation without measuring").
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    durations = []
    result: T
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        durations.append(time.perf_counter() - t0)
    return result, Timing(
        best_s=min(durations),
        mean_s=sum(durations) / len(durations),
        repeats=repeats,
    )
