"""Benchmark workload construction.

A workload is a (network, dataset) pair matching one cell of the paper's
experimental matrix.  Two modes:

* **quick** (default): the large Table II networks are scaled down (same
  edge density, fewer nodes) so the full experiment matrix completes in
  minutes on one core — the regime of CI machines and of this offline
  reproduction container.
* **full** (``REPRO_FULL=1``): every network at its published size.

Datasets are deterministic per (network, sample count).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache

from ..datasets.dataset import DiscreteDataset
from ..datasets.sampling import forward_sample
from ..networks.bayesnet import DiscreteBayesianNetwork
from ..networks.catalog import spec

__all__ = ["Workload", "make_workload", "quick_scale", "is_full_mode", "OVERALL_NETWORKS"]

#: The Table III / Fig. 2 network list (munin2/munin3 included only in full
#: mode — even the paper's authors hit the 48-hour wall on those).
OVERALL_NETWORKS = ("alarm", "insurance", "hepar2", "munin1", "diabetes", "link")

#: Quick-mode scale factors: chosen so each skeleton run takes seconds on a
#: single core while preserving the relative size ordering of Table II.
_QUICK_SCALES = {
    "alarm": 1.0,
    "insurance": 1.0,
    "hepar2": 0.6,
    "munin1": 0.25,
    "diabetes": 0.12,
    "link": 0.06,
    "munin2": 0.05,
    "munin3": 0.05,
}


def is_full_mode() -> bool:
    """True when ``REPRO_FULL=1`` requests published-size networks."""
    return os.environ.get("REPRO_FULL", "0") not in ("", "0", "false", "False")


def quick_scale(name: str) -> float:
    """Scale factor applied to a network in the current mode."""
    if is_full_mode():
        return 1.0
    return _QUICK_SCALES.get(name.lower(), 1.0)


@dataclass(frozen=True)
class Workload:
    """One benchmark configuration: a generating network and its dataset."""

    name: str
    network: DiscreteBayesianNetwork
    dataset: DiscreteDataset
    n_samples: int
    scale: float

    @property
    def label(self) -> str:
        suffix = "" if self.scale == 1.0 else f"@{self.scale:g}"
        return f"{self.name}{suffix}"


@lru_cache(maxsize=64)
def _cached_network(name: str, scale: float):
    return spec(name, scale).build()


@lru_cache(maxsize=64)
def _cached_dataset(name: str, scale: float, n_samples: int) -> DiscreteDataset:
    network = _cached_network(name, scale)
    # Seed tied to the network spec so every harness run sees the same data.
    return forward_sample(network, n_samples, rng=spec(name).seed * 7919 + n_samples)


def make_workload(
    name: str,
    n_samples: int = 5000,
    scale: float | None = None,
) -> Workload:
    """Build (or fetch from cache) a benchmark workload.

    ``scale=None`` selects the current mode's default scale.
    """
    resolved_scale = quick_scale(name) if scale is None else scale
    network = _cached_network(name, resolved_scale)
    dataset = _cached_dataset(name, resolved_scale, n_samples)
    return Workload(
        name=name,
        network=network,
        dataset=dataset,
        n_samples=n_samples,
        scale=resolved_scale,
    )
