"""Reproduction of every table and figure in the paper's evaluation.

Each ``experiment_*`` function regenerates one artefact (same rows/series
as the paper) and returns an :class:`ExperimentOutput` with the rendered
text plus raw data for programmatic checks.  The benchmark suite under
``benchmarks/`` and the CLI both call these functions.

Measurement policy (see EXPERIMENTS.md for the full discussion):

* Everything *sequential* is measured for real (wall clock on this host).
* Thread-count sweeps are **simulated**: the real algorithm's execution
  trace is replayed through :mod:`repro.simcpu`'s schedulers on a machine
  model calibrated against the measured sequential run.  The paper's
  52-core testbed is hardware this reproduction does not have.
* The pcalg/tetrad column is *extrapolated* from measured per-test cost of
  the interpreted tester (running the full interpreted learner on every
  network would need the paper's 48-hour budget; the extrapolation is
  marked with ``~`` in the output).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from ..citests.naive import NaiveGSquareTest
from ..core.learn import learn_structure
from ..core.result import LearnResult
from ..core.trace import TraceRecorder
from ..networks.catalog import TABLE_II, spec
from ..simcpu.costmodel import CostModel, calibrate_seconds_per_unit
from ..simcpu.machine import MachineSpec
from ..simcpu.perfcounters import perf_report
from ..simcpu.scheduler import SimResult, simulate
from .tables import format_seconds, render_series, render_table
from .workloads import OVERALL_NETWORKS, Workload, is_full_mode, make_workload

__all__ = [
    "ExperimentOutput",
    "TracedRun",
    "traced_run",
    "experiment_table1",
    "experiment_table2",
    "experiment_table3",
    "experiment_table4",
    "experiment_fig2",
    "experiment_fig3",
    "experiment_fig4",
    "experiment_fig5",
    "THREAD_SWEEP",
]

THREAD_SWEEP = (1, 2, 4, 8, 16, 32)

#: Assumed per-depth dispatch cost of R-level cluster parallelism
#: (parallel-PC spawns socket-cluster work per wave); used only for the
#: parallel-PC column of Table III and documented in EXPERIMENTS.md.
PARALLEL_PC_DEPTH_OVERHEAD_S = 0.3


@dataclass
class ExperimentOutput:
    """Rendered artefact plus raw data."""

    experiment: str
    title: str
    text: str
    data: dict = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"== {self.title} ==\n{self.text}"


# --------------------------------------------------------------------- #
# shared measured-run plumbing
# --------------------------------------------------------------------- #
@dataclass
class TracedRun:
    """A measured sequential run with its trace and calibrated cost model."""

    workload: Workload
    result: LearnResult
    trace: TraceRecorder
    model: CostModel
    seq_sim: SimResult

    def simulate(self, scheme: str, n_threads: int) -> SimResult:
        return simulate(self.trace.depths, self.model, scheme, n_threads)

    def speedup(self, scheme: str, n_threads: int) -> float:
        return self.simulate(scheme, n_threads).speedup_over(self.seq_sim)


_TRACED_CACHE: dict[tuple, TracedRun] = {}


def traced_run(
    workload: Workload,
    gs: int = 1,
    method: str = "fast-bns",
    cache_friendly: bool | None = None,
) -> TracedRun:
    """Run a learner sequentially with tracing, calibrate the cost model
    against the measured time, and cache the result for reuse across
    experiments."""
    key = (workload.label, workload.n_samples, gs, method)
    cached = _TRACED_CACHE.get(key)
    if cached is not None:
        return cached
    # Best-of-2 measurement: the timing feeds cross-method comparisons
    # whose margins are thin at small workloads, and a single cold run
    # (allocator state, page faults, transient machine load) carries
    # additive noise that can swamp them.  The runs are deterministic, so
    # keeping the faster run's trace and result changes timing fidelity
    # and nothing else.
    recorder = result = None
    for _ in range(2):
        rec = TraceRecorder()
        res = learn_structure(workload.dataset, method=method, gs=gs, recorder=rec)
        if result is None or res.elapsed["skeleton"] < result.elapsed["skeleton"]:
            recorder, result = rec, res
    if cache_friendly is None:
        cache_friendly = method == "fast-bns"
    model = CostModel(MachineSpec(), cache_friendly=cache_friendly)
    spu = calibrate_seconds_per_unit(model, recorder.depths, result.elapsed["skeleton"])
    model = CostModel(
        model.machine.calibrated(spu), cache_friendly=cache_friendly
    )
    seq_sim = simulate(recorder.depths, model, "sequential", 1)
    run = TracedRun(workload, result, recorder, model, seq_sim)
    _TRACED_CACHE[key] = run
    return run


def _naive_seconds_estimate(workload: Workload, n_tests: int, probe_tests: int = 20) -> float:
    """Extrapolated runtime of the interpreted (pcalg/tetrad-regime)
    learner: measured mean per-test cost x the reference run's test count."""
    tester = NaiveGSquareTest(workload.dataset.with_layout("sample-major"))
    rng = np.random.default_rng(0)
    n = workload.dataset.n_variables
    t0 = time.perf_counter()
    done = 0
    for _ in range(probe_tests):
        x, y = rng.choice(n, size=2, replace=False)
        z = [v for v in rng.choice(n, size=min(2, n - 2) + 1, replace=False) if v not in (x, y)][:1]
        tester.test(int(x), int(y), tuple(int(v) for v in z))
        done += 1
    per_test = (time.perf_counter() - t0) / max(done, 1)
    return per_test * n_tests


# --------------------------------------------------------------------- #
# Table I — properties of the three granularities
# --------------------------------------------------------------------- #
def experiment_table1(network: str = "hepar2", n_samples: int = 5000) -> ExperimentOutput:
    """Quantify Table I's three properties on a real trace.

    * load balance: max/mean per-thread busy time at t = 8;
    * atomic operations: count under the atomic sample-level variant
      (one per table update) versus zero for edge-/CI-level;
    * reasonable workloads: mean cost units per dispatched work item
      relative to the per-item dispatch overhead.
    """
    run = traced_run(make_workload(network, n_samples))
    t = 8
    sims = {
        "edge-level": run.simulate("edge", t),
        "sample-level": run.simulate("sample", t),
        "ci-level": run.simulate("ci", t),
    }
    counters = run.result.stats.counters
    table_updates = counters.data_accesses // max(1, 1)  # one update per sample access set
    n_tests = run.result.stats.n_tests
    spawn = run.model.machine.spawn_overhead_units

    def work_per_item(sim: SimResult, n_items: int) -> float:
        return sim.busy_units / max(n_items, 1)

    n_edges_items = sum(len(d.edges) for d in run.trace.depths)
    n_groups = sum(len(e.groups) for d in run.trace.depths for e in d.edges)
    rows = [
        [
            "Edge-level",
            f"{sims['edge-level'].load_imbalance:.2f}x",
            "0",
            f"{work_per_item(sims['edge-level'], n_edges_items) / spawn:.0f}x dispatch cost",
        ],
        [
            "Sample-level",
            f"{sims['sample-level'].load_imbalance:.2f}x",
            f"{n_tests * n_samples:,} (1/sample/test)",
            f"{work_per_item(sims['sample-level'], n_tests * t) / spawn:.1f}x dispatch cost",
        ],
        [
            "CI-level",
            f"{sims['ci-level'].load_imbalance:.2f}x",
            "0",
            f"{work_per_item(sims['ci-level'], n_groups) / spawn:.0f}x dispatch cost",
        ],
    ]
    text = render_table(
        ["granularity", f"load imbalance (t={t})", "atomic ops", "work per item"],
        rows,
        title=f"Table I analog on {run.workload.label} (m={n_samples})",
    )
    data = {
        "imbalance": {k: s.load_imbalance for k, s in sims.items()},
        "n_tests": n_tests,
        "atomic_ops_sample_level": n_tests * n_samples,
        "table_updates": table_updates,
    }
    return ExperimentOutput("table1", "Table I — granularity properties", text, data)


# --------------------------------------------------------------------- #
# Table II — benchmark networks
# --------------------------------------------------------------------- #
def experiment_table2() -> ExperimentOutput:
    """The benchmark catalog versus the paper's published counts."""
    rows = []
    data = {}
    for name, published in TABLE_II.items():
        scaled = spec(name, 1.0)
        net = scaled.build()
        rows.append(
            [
                name,
                published.n_nodes,
                net.n_nodes,
                published.n_edges,
                net.n_edges,
                published.max_samples,
            ]
        )
        data[name] = {
            "paper_nodes": published.n_nodes,
            "built_nodes": net.n_nodes,
            "paper_edges": published.n_edges,
            "built_edges": net.n_edges,
        }
    text = render_table(
        ["network", "nodes (paper)", "nodes (built)", "edges (paper)", "edges (built)", "max samples"],
        rows,
        title="Table II — benchmark networks (synthetic stand-ins, matched counts)",
    )
    return ExperimentOutput("table2", "Table II — benchmark networks", text, data)


# --------------------------------------------------------------------- #
# Table III — overall comparison
# --------------------------------------------------------------------- #
def experiment_table3(
    networks: Sequence[str] | None = None,
    n_samples: int = 5000,
    n_threads: int = 32,
) -> ExperimentOutput:
    """Sequential and parallel execution-time comparison.

    Sequential columns are measured (Fast-BNS, bnlearn analog) or
    extrapolated (pcalg/tetrad analog, marked ``~``).  Parallel columns are
    simulated at ``n_threads`` threads from the respective run's trace:
    Fast-BNS-par = CI-level on the Fast-BNS trace; bnlearn-par = edge-level
    on the reference trace (cache-unfriendly cost model); parallel-PC =
    bnlearn-par plus R-cluster per-depth dispatch overhead.
    """
    if networks is None:
        networks = OVERALL_NETWORKS if is_full_mode() else OVERALL_NETWORKS[:4]
    rows = []
    data = {}
    for name in networks:
        wl = make_workload(name, n_samples)
        fast = traced_run(wl, method="fast-bns")
        ref = traced_run(wl, method="pc-stable")

        t_fast_seq = fast.result.elapsed["skeleton"]
        t_ref_seq = ref.result.elapsed["skeleton"]
        t_naive_seq = _naive_seconds_estimate(wl, ref.result.stats.n_tests)

        fast_par = fast.simulate("ci", n_threads)
        ref_par = ref.simulate("edge", n_threads)
        t_fast_par = fast_par.seconds
        t_ref_par = ref_par.seconds
        t_parpc = t_ref_par + PARALLEL_PC_DEPTH_OVERHEAD_S * len(ref.trace.depths)

        rows.append(
            [
                wl.label,
                format_seconds(t_ref_seq),
                "~" + format_seconds(t_naive_seq),
                format_seconds(t_fast_seq),
                f"{t_ref_seq / t_fast_seq:.1f}",
                f"~{t_naive_seq / t_fast_seq:.0f}",
                format_seconds(t_ref_par),
                format_seconds(t_parpc),
                format_seconds(t_fast_par),
                f"{t_ref_par / t_fast_par:.1f}",
                f"{t_parpc / t_fast_par:.1f}",
            ]
        )
        data[wl.label] = {
            "bnlearn_seq_s": t_ref_seq,
            "naive_seq_s": t_naive_seq,
            "fastbns_seq_s": t_fast_seq,
            "bnlearn_par_s": t_ref_par,
            "parallel_pc_s": t_parpc,
            "fastbns_par_s": t_fast_par,
            "seq_speedup_vs_bnlearn": t_ref_seq / t_fast_seq,
            "par_speedup_vs_bnlearn": t_ref_par / t_fast_par,
            "n_tests_fast": fast.result.stats.n_tests,
            "n_tests_ref": ref.result.stats.n_tests,
        }
    text = render_table(
        [
            "network",
            "bnlearn*",
            "pcalg/tetrad*",
            "Fast-BNS-seq",
            "spdup/bnl",
            "spdup/pcalg",
            f"bnlearn-par* (t={n_threads})",
            "parallel-PC*",
            f"Fast-BNS-par (t={n_threads})",
            "spdup/bnl-par",
            "spdup/parPC",
        ],
        rows,
        title=(
            f"Table III analog, m={n_samples} "
            "(*analog baselines; ~ = extrapolated; parallel columns simulated)"
        ),
    )
    return ExperimentOutput("table3", "Table III — overall comparison", text, data)


# --------------------------------------------------------------------- #
# Table IV — perf-counter comparison
# --------------------------------------------------------------------- #
def experiment_table4(
    networks: Sequence[str] = ("hepar2", "munin1"),
    n_samples: int = 5000,
    n_threads: int = 16,
) -> ExperimentOutput:
    """Simulated perf counters for Fast-BNS-par/-seq and the bnlearn-par
    analog (cache behaviour from the architectural cache simulator)."""
    sections = []
    data = {}
    for name in networks:
        wl = make_workload(name, n_samples)
        fast = traced_run(wl, method="fast-bns")
        ref = traced_run(wl, method="pc-stable")
        n_vars = wl.dataset.n_variables

        reports = [
            perf_report(
                "Fast-BNS-par",
                n_vars,
                n_samples,
                fast.result.stats.counters,
                variable_major=True,
                sim=fast.simulate("ci", n_threads),
            ),
            perf_report(
                "Fast-BNS-seq",
                n_vars,
                n_samples,
                fast.result.stats.counters,
                variable_major=True,
                sim=fast.seq_sim,
            ),
            perf_report(
                "bnlearn-par*",
                n_vars,
                n_samples,
                ref.result.stats.counters,
                variable_major=False,
                sim=ref.simulate("edge", n_threads),
            ),
        ]
        rows = [[r.row()[k] for k in r.row()] for r in reports]
        headers = list(reports[0].row().keys())
        sections.append(
            render_table(headers, rows, title=f"{wl.label} (m={n_samples}, t={n_threads})")
        )
        data[wl.label] = {r.label: r for r in reports}
    text = "\n\n".join(sections)
    return ExperimentOutput("table4", "Table IV — simulated perf counters", text, data)


# --------------------------------------------------------------------- #
# Fig. 2 — three granularities vs thread count
# --------------------------------------------------------------------- #
def experiment_fig2(
    networks: Sequence[str] | None = None,
    n_samples: int = 5000,
    threads: Sequence[int] = THREAD_SWEEP,
) -> ExperimentOutput:
    """Simulated execution time of CI-, edge- and sample-level parallelism."""
    if networks is None:
        networks = OVERALL_NETWORKS if is_full_mode() else OVERALL_NETWORKS[:4]
    sections = []
    data = {}
    for name in networks:
        run = traced_run(make_workload(name, n_samples))
        series = {}
        for scheme, label in (("ci", "CI-level"), ("edge", "Edge-level"), ("sample", "Sample-level")):
            series[label] = [run.simulate(scheme, t).seconds for t in threads]
        sections.append(
            render_series(
                "threads",
                list(threads),
                series,
                title=f"{run.workload.label}: execution time (s, simulated)",
                fmt="{:.4f}",
            )
        )
        data[run.workload.label] = series
    text = "\n\n".join(sections)
    return ExperimentOutput("fig2", "Fig. 2 — granularity comparison", text, data)


# --------------------------------------------------------------------- #
# Fig. 3 — speedup vs sample size
# --------------------------------------------------------------------- #
def experiment_fig3(
    networks: Sequence[str] = ("alarm", "insurance", "hepar2", "munin1"),
    sample_sizes: Sequence[int] = (5000, 10000, 15000),
    threads: Sequence[int] = THREAD_SWEEP,
) -> ExperimentOutput:
    """Fast-BNS-par over Fast-BNS-seq speedup for several sample sizes."""
    sections = []
    data = {}
    for name in networks:
        series = {}
        for m in sample_sizes:
            run = traced_run(make_workload(name, m))
            series[f"m={m}"] = [run.speedup("ci", t) for t in threads]
        label = make_workload(name, sample_sizes[0]).label
        sections.append(
            render_series(
                "threads",
                list(threads),
                series,
                title=f"{label}: Fast-BNS-par/seq speedup (simulated)",
            )
        )
        data[label] = series
    text = "\n\n".join(sections)
    return ExperimentOutput("fig3", "Fig. 3 — sample-size scalability", text, data)


# --------------------------------------------------------------------- #
# Fig. 4 — group-size effect (measured for real)
# --------------------------------------------------------------------- #
def experiment_fig4(
    networks: Sequence[str] = ("alarm", "insurance", "hepar2", "munin1"),
    n_samples: int = 10000,
    group_sizes: Sequence[int] = (1, 2, 4, 6, 8, 10, 12, 14, 16),
) -> ExperimentOutput:
    """Execution time and CI-test inflation as functions of gs.

    Both series are *real measurements* of the sequential engine: gs
    changes which tests execute (group-before-decide redundancy) and how
    much X/Y encoding is reused — no simulation involved.
    """
    sections = []
    data = {}
    for name in networks:
        wl = make_workload(name, n_samples)
        times = []
        inflation = []
        base_tests = None
        best = (float("inf"), None)
        for gs in group_sizes:
            result = learn_structure(wl.dataset, method="fast-bns", gs=gs)
            n_tests = result.stats.n_tests
            if base_tests is None:
                base_tests = n_tests
            seconds = result.elapsed["skeleton"]
            times.append(seconds)
            inflation.append(100.0 * (n_tests - base_tests) / base_tests)
            if seconds < best[0]:
                best = (seconds, gs)
        series = {
            "time (s)": times,
            "CI tests increase (%)": inflation,
        }
        sections.append(
            render_series(
                "gs",
                list(group_sizes),
                series,
                title=f"{wl.label} (m={n_samples}); fastest at gs={best[1]}",
                fmt="{:.3f}",
            )
        )
        data[wl.label] = {
            "group_sizes": list(group_sizes),
            "times": times,
            "inflation_pct": inflation,
            "best_gs": best[1],
        }
    text = "\n\n".join(sections)
    return ExperimentOutput("fig4", "Fig. 4 — group-size effect (measured)", text, data)


# --------------------------------------------------------------------- #
# Fig. 5 — speedup vs network size
# --------------------------------------------------------------------- #
def experiment_fig5(
    networks: Sequence[str] | None = None,
    n_samples: int = 5000,
    n_threads: int = 32,
) -> ExperimentOutput:
    """Fast-BNS-par/seq speedup across network sizes."""
    if networks is None:
        networks = OVERALL_NETWORKS
    rows = []
    data = {}
    for name in networks:
        run = traced_run(make_workload(name, n_samples))
        s = run.speedup("ci", n_threads)
        rows.append(
            [run.workload.label, run.workload.network.n_nodes, run.workload.network.n_edges, f"{s:.1f}"]
        )
        data[run.workload.label] = {
            "n_nodes": run.workload.network.n_nodes,
            "speedup": s,
        }
    text = render_table(
        ["network", "nodes", "edges", f"speedup (t={n_threads}, simulated)"],
        rows,
        title=f"Fig. 5 analog, m={n_samples}",
    )
    return ExperimentOutput("fig5", "Fig. 5 — network-size scalability", text, data)
