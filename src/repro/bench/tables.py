"""Plain-text table and series rendering for the benchmark harness.

The harness prints the same rows/series the paper reports; these helpers
keep that output aligned and diff-friendly (no external dependencies).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["render_table", "render_series", "format_seconds"]


def format_seconds(seconds: float) -> str:
    """Human-scaled seconds (µs to hours) for table cells."""
    if seconds != seconds:  # NaN
        return "-"
    if seconds < 0:
        raise ValueError("negative duration")
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 120:
        return f"{seconds:.2f}s"
    if seconds < 7200:
        return f"{seconds / 60:.1f}min"
    return f"{seconds / 3600:.1f}h"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width ASCII table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths, strict=True)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths, strict=True)))
    return "\n".join(lines)


def render_series(
    x_label: str,
    xs: Sequence[object],
    series: Mapping[str, Sequence[float]],
    title: str | None = None,
    fmt: str = "{:.2f}",
) -> str:
    """A figure rendered as one row per series (x values as columns)."""
    headers = [x_label] + [str(x) for x in xs]
    rows = []
    for name, values in series.items():
        if len(values) != len(xs):
            raise ValueError(f"series {name!r} length does not match xs")
        rows.append([name] + [fmt.format(v) for v in values])
    return render_table(headers, rows, title=title)
