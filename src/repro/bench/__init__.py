"""Benchmark harness: workloads, experiment regenerators, rendering."""

from .experiments import (
    THREAD_SWEEP,
    ExperimentOutput,
    TracedRun,
    experiment_fig2,
    experiment_fig3,
    experiment_fig4,
    experiment_fig5,
    experiment_table1,
    experiment_table2,
    experiment_table3,
    experiment_table4,
    traced_run,
)
from .runner import Timing, time_call
from .tables import format_seconds, render_series, render_table
from .workloads import OVERALL_NETWORKS, Workload, is_full_mode, make_workload, quick_scale

__all__ = [
    "ExperimentOutput",
    "TracedRun",
    "traced_run",
    "experiment_table1",
    "experiment_table2",
    "experiment_table3",
    "experiment_table4",
    "experiment_fig2",
    "experiment_fig3",
    "experiment_fig4",
    "experiment_fig5",
    "THREAD_SWEEP",
    "Workload",
    "make_workload",
    "quick_scale",
    "is_full_mode",
    "OVERALL_NETWORKS",
    "render_table",
    "render_series",
    "format_seconds",
    "Timing",
    "time_call",
]
