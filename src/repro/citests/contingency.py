"""Vectorised contingency-table construction.

Generating the contingency table is the dominant step of every CI test
(Sec. IV-A of the paper): for ``I(X, Y | Z1..Zd)`` each of the ``m`` samples
selects one cell of an ``(n_z_configs, |X|, |Y|)`` table.  The C++ original
walks the samples in a tight loop; the NumPy equivalent encodes the cell
index of every sample with mixed-radix arithmetic and counts with a single
``np.bincount`` — one pass over each participating column, which is where
the storage-layout (cache-friendliness) effect shows up.

When the structural number of Z configurations greatly exceeds the sample
count, Z codes are first compressed through ``np.unique`` so the dense table
stays bounded by ``m * |X| * |Y|`` cells regardless of depth.

Group kernel (the offset-stacked bincount trick)
------------------------------------------------
Fast-BNS groups the ``gs`` conditioning sets of one edge so the X/Y work is
shared across the group (Sec. IV-B).  :func:`group_ci_counts` takes that
one step further: instead of one ``bincount`` per conditioning set, every
set ``k`` of the group gets the *offset* ``k * (nz_max * rx * ry)`` added to
its per-sample cell codes, the offset code arrays are concatenated, and one
single ``np.bincount`` over ``gs * m`` codes produces all ``gs`` contingency
tables at once as a ``(gs, nz_max, rx, ry)`` stack.  The per-set tables are
bit-identical to what per-set :func:`ci_counts` calls would build (integer
counts over disjoint code ranges), while the per-call NumPy dispatch and the
X/Y cell codes are paid once per group instead of once per set.

Batching requires every set of the group to be *dense* (its structural
``prod(rz)`` at most ``compress_threshold * m``, so no ``np.unique``
compression kicks in): compressed sets have data-dependent first-axis sizes
that cannot share a fixed per-set stride.  Callers (the CI testers) route
compressed-Z sets through the looped per-set path, which also survives as
the reference oracle for the batched kernel.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = [
    "code_dtype",
    "encode_columns",
    "contingency_table",
    "ci_counts",
    "group_ci_counts",
    "fused_cell_counts",
    "offset_vector",
    "marginalize_table",
    "marginal_tables",
    "n_configurations",
]

#: Mixed-radix codes are built in int64; beyond this bound ``codes * arity``
#: could wrap, so :func:`encode_columns` switches to pairwise ``np.unique``
#: compression (labels stay bounded by the sample count).
_INT64_CODE_LIMIT = np.iinfo(np.int64).max

#: Arity-driven narrowing tiers: the smallest dtype whose ``iinfo.max``
#: covers the configuration count carries the codes.  Tier boundaries sit
#: at 255/256 and 65535/65536 (``n_configs`` itself must fit, keeping one
#: spare value so ``codes * arity`` sub-products never saturate the type).
_DTYPE_TIERS = (np.dtype(np.uint8), np.dtype(np.uint16), np.dtype(np.int32))


def code_dtype(n_configs: int) -> np.dtype:
    """Smallest supported code dtype able to hold ``n_configs``.

    ``uint8`` up to 255, ``uint16`` up to 65535, ``int32`` up to
    ``2**31 - 1``, ``int64`` beyond — the narrowing that halves (or
    quarters) the kernel's memory traffic for typical Table II arities.
    """
    for dt in _DTYPE_TIERS:
        if n_configs <= np.iinfo(dt).max:
            return dt
    return np.dtype(np.int64)


def n_configurations(arities: Sequence[int]) -> int:
    """Product of arities (number of joint configurations), 1 for empty."""
    out = 1
    for a in arities:
        out *= int(a)
    return out


def encode_columns(
    columns: Sequence[np.ndarray],
    arities: Sequence[int],
    dtype=None,
) -> tuple[np.ndarray, int]:
    """Mixed-radix encoding of parallel columns (first column most
    significant).

    Returns ``(codes, n_configs)``.  An empty column list encodes every
    sample as configuration ``0``.

    ``dtype`` selects the code dtype: ``None`` keeps the historical int64
    (every existing caller's bit-exact contract), ``"auto"`` narrows to
    :func:`code_dtype` of the configuration count (``uint8``/``uint16``/
    ``int32``/``int64`` by ``prod(arities)``), and a concrete dtype is
    used as given (the caller guarantees it fits).  All mixed-radix
    sub-products are bounded by ``n_configs - 1``, so narrowing never
    changes a code value, only its width.

    In the single-column case the encoding *is* the column: it is returned
    as ``astype(dtype, copy=False)`` — a **view of (or the very same)
    input array** when the dtype already matches, since no accumulation
    follows that would mutate it.  Multi-column encodings always copy
    (the first column becomes the accumulator).

    When ``prod(arities)`` does not fit in int64 the mixed-radix value
    itself would silently wrap, so the encoding falls back to pairwise
    ``np.unique`` compression: whenever the next ``codes * arity`` step
    could overflow, the codes so far are first relabelled to their dense
    rank (bounded by the sample count).  The result is then an *injective
    configuration labelling* — equal codes iff equal configurations, and
    label order still follows the mixed-radix (lexicographic) order —
    rather than the mixed-radix value, which is exactly the property every
    consumer (``np.unique`` compression, ``bincount`` grouping) relies on.
    ``n_configs`` is returned as an exact Python int in either case (and
    the fallback always carries int64 codes: ranks are data-dependent).
    """
    if len(columns) != len(arities):
        raise ValueError("columns and arities must have equal length")
    n_configs = n_configurations(arities)
    if dtype is None:
        target = np.dtype(np.int64)
    elif isinstance(dtype, str) and dtype == "auto":
        target = code_dtype(n_configs)
    else:
        target = np.dtype(dtype)
    if not columns:
        return np.zeros(0, dtype=target), 1
    if len(columns) == 1:
        # No accumulation follows: the column is the encoding.  Returning
        # a view (read-only when the input is) instead of a copy is safe
        # because no consumer mutates single-column codes.
        return columns[0].astype(target, copy=False), n_configs
    codes = columns[0].astype(target, copy=True)
    n_labels = int(arities[0])  # exclusive upper bound on the codes so far
    limit = int(np.iinfo(target).max)
    for i in range(1, len(columns)):
        a = int(arities[i])
        if a > 1 and n_labels > limit // a:
            # codes * a could wrap: compress the labels first.  Ranks are
            # < n_samples + 1, so the next products fit comfortably.
            # (Unreachable under "auto"/explicit dtypes, which are chosen
            # so n_configs fits; the int64 fallback keeps int64 codes.)
            _, inverse = np.unique(codes, return_inverse=True)
            codes = inverse.astype(np.int64, copy=False)
            target = np.dtype(np.int64)
            limit = _INT64_CODE_LIMIT
            n_labels = int(codes.max()) + 1 if codes.size else 1
        codes *= a
        # ``casting="unsafe"`` lets narrowed accumulators add wider source
        # columns in one ufunc call; every sub-product is bounded by
        # ``n_configs - 1`` (which fits ``target`` by construction), so the
        # down-cast never changes a value.
        np.add(codes, columns[i], out=codes, casting="unsafe")
        n_labels *= a
    return codes, n_configs


def contingency_table(
    x_col: np.ndarray,
    y_col: np.ndarray,
    z_cols: Sequence[np.ndarray],
    rx: int,
    ry: int,
    rz: Sequence[int],
    compress_threshold: int = 4,
) -> tuple[np.ndarray, int]:
    """Counts ``N[z, x, y]`` plus the *structural* number of Z configurations.

    The returned array's first axis may be smaller than the structural
    ``prod(rz)`` when compression kicked in (empty slices dropped); the
    structural count is returned separately because the classical G^2
    degrees of freedom depend on it.

    ``compress_threshold``: compress Z codes whenever the structural config
    count exceeds ``compress_threshold * m``.
    """
    m = x_col.shape[0]
    nz_structural = n_configurations(rz)
    if z_cols:
        z_codes, _ = encode_columns(list(z_cols), list(rz))
        if nz_structural > compress_threshold * max(m, 1):
            # Dense axis would be mostly empty slices: compress.
            _, z_codes = np.unique(z_codes, return_inverse=True)
            nz_dense = int(z_codes.max()) + 1 if m else 0
        else:
            nz_dense = nz_structural
    else:
        z_codes = None
        nz_dense = 1

    if z_codes is None:
        cell = x_col.astype(np.int64) * ry + y_col
    else:
        cell = (z_codes * rx + x_col) * ry + y_col
    counts = np.bincount(cell, minlength=nz_dense * rx * ry).reshape(nz_dense, rx, ry)
    return counts, nz_structural


def ci_counts(
    x_col: np.ndarray,
    y_col: np.ndarray,
    z_cols: Sequence[np.ndarray],
    rx: int,
    ry: int,
    rz: Sequence[int],
    compress_threshold: int = 4,
    xy_codes: np.ndarray | None = None,
    z_codes: np.ndarray | None = None,
) -> tuple[np.ndarray, int, bool]:
    """Counts ``N[z, x, y]`` for one CI test, with optional precomputed codes.

    This is the single table-construction entry point shared by the CI
    testers and the :mod:`repro.engine` sufficient-statistics cache: both
    paths produce byte-identical tables because they run this exact code.

    ``xy_codes`` (``x * ry + y`` per sample) and ``z_codes`` (mixed-radix
    encoding of the conditioning columns, *pre-compression*) may be supplied
    to skip re-encoding — the group-evaluation and encoding-cache reuse
    hooks.

    Returns ``(counts, nz_structural, dense)`` where ``dense`` reports
    whether the first axis covers every structural Z configuration (i.e.
    compression did **not** kick in) — dense tables can later be
    marginalized exactly, compressed ones cannot.
    """
    m = x_col.shape[0]
    nz_structural = n_configurations(rz)
    if xy_codes is None:
        xy_codes = x_col.astype(np.int64) * ry + y_col
    if rz:
        if z_codes is None:
            z_codes, _ = encode_columns(list(z_cols), list(rz))
        if nz_structural > compress_threshold * max(m, 1):
            _, z_codes = np.unique(z_codes, return_inverse=True)
            nz_dense = int(z_codes.max()) + 1 if m else 0
            dense = False
        else:
            nz_dense = nz_structural
            dense = True
        cell = z_codes * (rx * ry) + xy_codes
    else:
        nz_dense = 1
        dense = True
        cell = xy_codes
    counts = np.bincount(cell, minlength=nz_dense * rx * ry).reshape(nz_dense, rx, ry)
    return counts, nz_structural, dense


# Module-level cache of the group-offset base vector: ``group_ci_counts``
# used to rebuild ``np.arange(n_sets)`` for every group, a measurable slice
# of small-group dispatch.  One read-only arange per dtype is grown
# geometrically and sliced per call instead.
_ARANGE_CACHE: dict[str, np.ndarray] = {}


def offset_vector(n: int, dtype=np.int64) -> np.ndarray:
    """Read-only ``arange(n)`` served from a grow-only module cache."""
    dt = np.dtype(dtype)
    arange = _ARANGE_CACHE.get(dt.str)
    if arange is None or arange.shape[0] < n:
        arange = np.arange(max(n, 64), dtype=dt)
        arange.setflags(write=False)
        _ARANGE_CACHE[dt.str] = arange
    return arange[:n]


def group_ci_counts(
    xy_codes: np.ndarray,
    z_codes_per_set: Sequence[np.ndarray | None],
    nz_per_set: Sequence[int],
    rx: int,
    ry: int,
) -> np.ndarray:
    """All contingency tables of one endpoint group from a single bincount.

    This is the batched group kernel (module docstring): the ``gs`` sets of
    a group share the endpoints ``(x, y)``, so their per-sample cell codes
    differ only by the conditioning codes and a per-set offset.  Set ``k``
    occupies the code range ``[k * nz_max * rx * ry, (k + 1) * nz_max * rx *
    ry)`` where ``nz_max = max(nz_per_set)``; one ``np.bincount`` over the
    concatenated codes of all sets fills every table at once.

    Parameters
    ----------
    xy_codes:
        Per-sample endpoint cell codes ``x * ry + y`` (shared by the group).
    z_codes_per_set:
        Per-set *dense* mixed-radix conditioning codes: either a sequence
        of 1-D arrays (``None`` for the empty conditioning set) or a 2-D
        ``(n_sets, m)`` array (the vectorized group-encoding fast path).
        Every set must be dense — i.e. its structural ``nz`` is the actual
        first-axis size; the caller is responsible for routing compressed
        sets to the looped path.
    nz_per_set:
        Structural configuration count of each set.
    rx, ry:
        Endpoint arities.

    Returns
    -------
    A ``(n_sets, nz_max, rx, ry)`` integer stack; set ``k``'s table is the
    slice ``[k, :nz_per_set[k]]`` and is bit-identical to the table a
    per-set :func:`ci_counts` call would have built (rows beyond ``nz`` are
    zero padding).
    """
    n_sets = len(nz_per_set)
    if n_sets != len(z_codes_per_set):
        raise ValueError("z_codes_per_set and nz_per_set must have equal length")
    if n_sets == 0:
        raise ValueError("group must contain at least one conditioning set")
    nz_max = int(max(nz_per_set))
    xyr = rx * ry
    stride = nz_max * xyr
    if isinstance(z_codes_per_set, np.ndarray) and z_codes_per_set.ndim == 2:
        # Stacked codes: offset every row in three whole-group in-place
        # operations.  The 2-D form is *consumed* (mutated) — callers pass
        # a freshly built group encoding they no longer need.
        cells2d = z_codes_per_set
        cells2d *= xyr
        np.add(cells2d, xy_codes, out=cells2d, casting="unsafe")
        # The offset base vector comes from the module-level arange cache
        # instead of a per-call np.arange (the small multiply below stays —
        # it is n_sets elements, not n_sets * m).
        offsets = offset_vector(n_sets, cells2d.dtype) * cells2d.dtype.type(stride)
        cells2d += offsets[:, None]
        cells = cells2d.ravel()
    else:
        parts: list[np.ndarray] = []
        for k, z_codes in enumerate(z_codes_per_set):
            if z_codes is None:
                cell = xy_codes + k * stride
            else:
                cell = z_codes * xyr
                cell += xy_codes
                if k:
                    cell += k * stride
            parts.append(cell)
        cells = parts[0] if n_sets == 1 else np.concatenate(parts)
    counts = np.bincount(cells, minlength=n_sets * stride)
    return counts.reshape(n_sets, nz_max, rx, ry)


def fused_cell_counts(
    z2d: np.ndarray,
    xy_mat: np.ndarray | None,
    row_group: np.ndarray | None,
    scales: np.ndarray | None,
    offsets: np.ndarray | None,
    total_cells: int,
    gather_out: np.ndarray | None = None,
    use_native: bool = True,
    xy_runs: list[tuple[int, int, np.ndarray]] | None = None,
    add_out: np.ndarray | None = None,
) -> np.ndarray:
    """One histogram over the cell codes of many groups (the *megagroup*).

    Generalizes :func:`group_ci_counts` across groups with different
    endpoints: row ``r`` of ``z2d`` holds the dense conditioning codes of
    one (set, group) pair, and its global cell codes are::

        z2d[r, i] * scales[r] + xy_mat[row_group[r], i] + offsets[r]

    where ``scales[r]`` is the group's ``rx * ry``, ``xy_mat`` stacks the
    distinct endpoint encodings of the fused groups, and ``offsets[r]`` is
    the set's disjoint base in the flat output (assigned by the caller so
    each set owns exactly ``nz * rx * ry`` cells — no padding).  A single
    ``np.bincount`` (or the native one-pass loop, when available and
    ``use_native``) produces every table of every fused group at once;
    integer counts over disjoint ranges make the result bit-identical to
    per-set :func:`ci_counts` builds regardless of path or cell dtype.

    ``scales=None`` (which implies ``offsets=None``) means the caller
    already folded both into ``z2d`` — each row holds
    ``z * scale + offset`` (the fused engine memoizes *scaled* rows per
    ``(set, scale)``), so only the endpoint codes remain to be added
    before the histogram.  ``xy_runs`` — ``(start, stop, codes)`` slices
    of rows sharing one endpoint encoding — lets the NumPy path add the
    endpoint codes as one broadcast per run instead of gathering an
    ``n x m`` matrix; ``xy_mat``/``row_group`` (the gather form) are then
    only consulted by the native kernel and may be ``None`` when it is
    off.

    ``z2d`` is *consumed* (mutated) by the NumPy path; ``gather_out`` may
    supply a same-shape scratch buffer (the kernel arena's) for the
    endpoint gather.  All integer dtypes are accepted; the native path
    handles the int32/int64 pair the fused engine emits and falls back to
    NumPy otherwise.

    ``add_out`` (an ``intp`` buffer of ``z2d``'s shape, NumPy-path +
    ``xy_runs`` form only) receives the endpoint-add results instead of
    mutating ``z2d``: ``bincount`` requires ``intp`` codes and silently
    materialises a converted copy for anything narrower, so widening
    *during* the add folds that hidden allocation-plus-pass into work the
    kernel was doing anyway.  Identical sums, identical histogram.
    """
    if use_native and xy_mat is not None:
        from .native import native_fused_counts

        out = np.zeros(int(total_cells), dtype=np.int64)
        n_rows = z2d.shape[0]
        sc = scales if scales is not None else np.ones(n_rows, dtype=np.int64)
        off = offsets if offsets is not None else np.zeros(n_rows, dtype=np.int64)
        if native_fused_counts(z2d, xy_mat, row_group, sc, off, out):
            return out
    if scales is not None:
        z2d *= scales[:, None].astype(z2d.dtype, copy=False)
    if xy_runs is not None:
        if add_out is not None and offsets is None:
            for b, c, codes in xy_runs:
                np.add(z2d[b:c], codes, out=add_out[b:c])
            return np.bincount(add_out.reshape(-1), minlength=int(total_cells))
        for b, c, codes in xy_runs:
            block = z2d[b:c]
            np.add(block, codes, out=block, casting="unsafe")
    else:
        if gather_out is None:
            gather_out = np.empty(z2d.shape, dtype=xy_mat.dtype)
        np.take(xy_mat, row_group, axis=0, out=gather_out)
        np.add(z2d, gather_out, out=z2d, casting="unsafe")
    if offsets is not None:
        np.add(z2d, offsets[:, None], out=z2d, casting="unsafe")
    return np.bincount(z2d.reshape(-1), minlength=int(total_cells))


def marginalize_table(
    table: np.ndarray,
    dims: Sequence[int],
    keep: Sequence[int],
) -> np.ndarray:
    """Exact marginal of a dense joint-count table.

    ``table`` is any array reshapeable to ``dims`` (one axis per variable);
    ``keep`` lists the axis positions to retain, *in the output's axis
    order* (so it both selects and permutes).  All other axes are summed
    out.  Counts are integers, so the marginal equals what a direct scan
    of the data would have produced — this is what lets the stats cache
    answer a lower-order query from a cached higher-order table.
    """
    arr = np.asarray(table).reshape(tuple(dims))
    keep = list(keep)
    drop = tuple(i for i in range(arr.ndim) if i not in keep)
    if drop:
        arr = arr.sum(axis=drop)
        # Axes shift down after the sum: recompute each kept axis's position.
        remaining = [i for i in range(len(dims)) if i not in drop]
        pos = {axis: i for i, axis in enumerate(remaining)}
        keep = [pos[axis] for axis in keep]
    return np.ascontiguousarray(arr.transpose(keep))


def marginal_tables(
    counts: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Marginals ``(N[x,+,z], N[+,y,z], N[+,+,z])`` of a ``(nz, rx, ry)``
    table, in the paper's ``N_{x+z}, N_{+yz}, N_{++z}`` notation."""
    n_xz = counts.sum(axis=2)  # (nz, rx)
    n_yz = counts.sum(axis=1)  # (nz, ry)
    n_z = n_xz.sum(axis=1)  # (nz,)
    return n_xz, n_yz, n_z
