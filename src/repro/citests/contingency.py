"""Vectorised contingency-table construction.

Generating the contingency table is the dominant step of every CI test
(Sec. IV-A of the paper): for ``I(X, Y | Z1..Zd)`` each of the ``m`` samples
selects one cell of an ``(n_z_configs, |X|, |Y|)`` table.  The C++ original
walks the samples in a tight loop; the NumPy equivalent encodes the cell
index of every sample with mixed-radix arithmetic and counts with a single
``np.bincount`` — one pass over each participating column, which is where
the storage-layout (cache-friendliness) effect shows up.

When the structural number of Z configurations greatly exceeds the sample
count, Z codes are first compressed through ``np.unique`` so the dense table
stays bounded by ``m * |X| * |Y|`` cells regardless of depth.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "encode_columns",
    "contingency_table",
    "ci_counts",
    "marginalize_table",
    "marginal_tables",
    "n_configurations",
]


def n_configurations(arities: Sequence[int]) -> int:
    """Product of arities (number of joint configurations), 1 for empty."""
    out = 1
    for a in arities:
        out *= int(a)
    return out


def encode_columns(
    columns: Sequence[np.ndarray],
    arities: Sequence[int],
) -> tuple[np.ndarray, int]:
    """Mixed-radix encoding of parallel columns (first column most
    significant).

    Returns ``(codes, n_configs)`` where ``codes`` is int64 of the same
    length as the columns.  An empty column list encodes every sample as
    configuration ``0``.
    """
    if len(columns) != len(arities):
        raise ValueError("columns and arities must have equal length")
    if not columns:
        return np.zeros(0, dtype=np.int64), 1
    codes = columns[0].astype(np.int64, copy=True)
    for i in range(1, len(columns)):
        codes *= int(arities[i])
        codes += columns[i]
    return codes, n_configurations(arities)


def contingency_table(
    x_col: np.ndarray,
    y_col: np.ndarray,
    z_cols: Sequence[np.ndarray],
    rx: int,
    ry: int,
    rz: Sequence[int],
    compress_threshold: int = 4,
) -> tuple[np.ndarray, int]:
    """Counts ``N[z, x, y]`` plus the *structural* number of Z configurations.

    The returned array's first axis may be smaller than the structural
    ``prod(rz)`` when compression kicked in (empty slices dropped); the
    structural count is returned separately because the classical G^2
    degrees of freedom depend on it.

    ``compress_threshold``: compress Z codes whenever the structural config
    count exceeds ``compress_threshold * m``.
    """
    m = x_col.shape[0]
    nz_structural = n_configurations(rz)
    if z_cols:
        z_codes, _ = encode_columns(list(z_cols), list(rz))
        if nz_structural > compress_threshold * max(m, 1):
            # Dense axis would be mostly empty slices: compress.
            _, z_codes = np.unique(z_codes, return_inverse=True)
            nz_dense = int(z_codes.max()) + 1 if m else 0
        else:
            nz_dense = nz_structural
    else:
        z_codes = None
        nz_dense = 1

    if z_codes is None:
        cell = x_col.astype(np.int64) * ry + y_col
    else:
        cell = (z_codes * rx + x_col) * ry + y_col
    counts = np.bincount(cell, minlength=nz_dense * rx * ry).reshape(nz_dense, rx, ry)
    return counts, nz_structural


def ci_counts(
    x_col: np.ndarray,
    y_col: np.ndarray,
    z_cols: Sequence[np.ndarray],
    rx: int,
    ry: int,
    rz: Sequence[int],
    compress_threshold: int = 4,
    xy_codes: np.ndarray | None = None,
    z_codes: np.ndarray | None = None,
) -> tuple[np.ndarray, int, bool]:
    """Counts ``N[z, x, y]`` for one CI test, with optional precomputed codes.

    This is the single table-construction entry point shared by the CI
    testers and the :mod:`repro.engine` sufficient-statistics cache: both
    paths produce byte-identical tables because they run this exact code.

    ``xy_codes`` (``x * ry + y`` per sample) and ``z_codes`` (mixed-radix
    encoding of the conditioning columns, *pre-compression*) may be supplied
    to skip re-encoding — the group-evaluation and encoding-cache reuse
    hooks.

    Returns ``(counts, nz_structural, dense)`` where ``dense`` reports
    whether the first axis covers every structural Z configuration (i.e.
    compression did **not** kick in) — dense tables can later be
    marginalized exactly, compressed ones cannot.
    """
    m = x_col.shape[0]
    nz_structural = n_configurations(rz)
    if xy_codes is None:
        xy_codes = x_col.astype(np.int64) * ry + y_col
    if rz:
        if z_codes is None:
            z_codes, _ = encode_columns(list(z_cols), list(rz))
        if nz_structural > compress_threshold * max(m, 1):
            _, z_codes = np.unique(z_codes, return_inverse=True)
            nz_dense = int(z_codes.max()) + 1 if m else 0
            dense = False
        else:
            nz_dense = nz_structural
            dense = True
        cell = z_codes * (rx * ry) + xy_codes
    else:
        nz_dense = 1
        dense = True
        cell = xy_codes
    counts = np.bincount(cell, minlength=nz_dense * rx * ry).reshape(nz_dense, rx, ry)
    return counts, nz_structural, dense


def marginalize_table(
    table: np.ndarray,
    dims: Sequence[int],
    keep: Sequence[int],
) -> np.ndarray:
    """Exact marginal of a dense joint-count table.

    ``table`` is any array reshapeable to ``dims`` (one axis per variable);
    ``keep`` lists the axis positions to retain, *in the output's axis
    order* (so it both selects and permutes).  All other axes are summed
    out.  Counts are integers, so the marginal equals what a direct scan
    of the data would have produced — this is what lets the stats cache
    answer a lower-order query from a cached higher-order table.
    """
    arr = np.asarray(table).reshape(tuple(dims))
    keep = list(keep)
    drop = tuple(i for i in range(arr.ndim) if i not in keep)
    if drop:
        arr = arr.sum(axis=drop)
        # Axes shift down after the sum: recompute each kept axis's position.
        remaining = [i for i in range(len(dims)) if i not in drop]
        pos = {axis: i for i, axis in enumerate(remaining)}
        keep = [pos[axis] for axis in keep]
    return np.ascontiguousarray(arr.transpose(keep))


def marginal_tables(
    counts: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Marginals ``(N[x,+,z], N[+,y,z], N[+,+,z])`` of a ``(nz, rx, ry)``
    table, in the paper's ``N_{x+z}, N_{+yz}, N_{++z}`` notation."""
    n_xz = counts.sum(axis=2)  # (nz, rx)
    n_yz = counts.sum(axis=1)  # (nz, ry)
    n_z = n_xz.sum(axis=1)  # (nz,)
    return n_xz, n_yz, n_z
