"""Vectorised contingency-table construction.

Generating the contingency table is the dominant step of every CI test
(Sec. IV-A of the paper): for ``I(X, Y | Z1..Zd)`` each of the ``m`` samples
selects one cell of an ``(n_z_configs, |X|, |Y|)`` table.  The C++ original
walks the samples in a tight loop; the NumPy equivalent encodes the cell
index of every sample with mixed-radix arithmetic and counts with a single
``np.bincount`` — one pass over each participating column, which is where
the storage-layout (cache-friendliness) effect shows up.

When the structural number of Z configurations greatly exceeds the sample
count, Z codes are first compressed through ``np.unique`` so the dense table
stays bounded by ``m * |X| * |Y|`` cells regardless of depth.

Group kernel (the offset-stacked bincount trick)
------------------------------------------------
Fast-BNS groups the ``gs`` conditioning sets of one edge so the X/Y work is
shared across the group (Sec. IV-B).  :func:`group_ci_counts` takes that
one step further: instead of one ``bincount`` per conditioning set, every
set ``k`` of the group gets the *offset* ``k * (nz_max * rx * ry)`` added to
its per-sample cell codes, the offset code arrays are concatenated, and one
single ``np.bincount`` over ``gs * m`` codes produces all ``gs`` contingency
tables at once as a ``(gs, nz_max, rx, ry)`` stack.  The per-set tables are
bit-identical to what per-set :func:`ci_counts` calls would build (integer
counts over disjoint code ranges), while the per-call NumPy dispatch and the
X/Y cell codes are paid once per group instead of once per set.

Batching requires every set of the group to be *dense* (its structural
``prod(rz)`` at most ``compress_threshold * m``, so no ``np.unique``
compression kicks in): compressed sets have data-dependent first-axis sizes
that cannot share a fixed per-set stride.  Callers (the CI testers) route
compressed-Z sets through the looped per-set path, which also survives as
the reference oracle for the batched kernel.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "encode_columns",
    "contingency_table",
    "ci_counts",
    "group_ci_counts",
    "marginalize_table",
    "marginal_tables",
    "n_configurations",
]

#: Mixed-radix codes are built in int64; beyond this bound ``codes * arity``
#: could wrap, so :func:`encode_columns` switches to pairwise ``np.unique``
#: compression (labels stay bounded by the sample count).
_INT64_CODE_LIMIT = np.iinfo(np.int64).max


def n_configurations(arities: Sequence[int]) -> int:
    """Product of arities (number of joint configurations), 1 for empty."""
    out = 1
    for a in arities:
        out *= int(a)
    return out


def encode_columns(
    columns: Sequence[np.ndarray],
    arities: Sequence[int],
) -> tuple[np.ndarray, int]:
    """Mixed-radix encoding of parallel columns (first column most
    significant).

    Returns ``(codes, n_configs)`` where ``codes`` is int64 of the same
    length as the columns.  An empty column list encodes every sample as
    configuration ``0``.

    When ``prod(arities)`` does not fit in int64 the mixed-radix value
    itself would silently wrap, so the encoding falls back to pairwise
    ``np.unique`` compression: whenever the next ``codes * arity`` step
    could overflow, the codes so far are first relabelled to their dense
    rank (bounded by the sample count).  The result is then an *injective
    configuration labelling* — equal codes iff equal configurations, and
    label order still follows the mixed-radix (lexicographic) order —
    rather than the mixed-radix value, which is exactly the property every
    consumer (``np.unique`` compression, ``bincount`` grouping) relies on.
    ``n_configs`` is returned as an exact Python int in either case.
    """
    if len(columns) != len(arities):
        raise ValueError("columns and arities must have equal length")
    if not columns:
        return np.zeros(0, dtype=np.int64), 1
    codes = columns[0].astype(np.int64, copy=True)
    n_labels = int(arities[0])  # exclusive upper bound on the codes so far
    for i in range(1, len(columns)):
        a = int(arities[i])
        if a > 1 and n_labels > _INT64_CODE_LIMIT // a:
            # codes * a could wrap: compress the labels first.  Ranks are
            # < n_samples + 1, so the next products fit comfortably.
            _, inverse = np.unique(codes, return_inverse=True)
            codes = inverse.astype(np.int64, copy=False)
            n_labels = int(codes.max()) + 1 if codes.size else 1
        codes *= a
        codes += columns[i]
        n_labels *= a
    return codes, n_configurations(arities)


def contingency_table(
    x_col: np.ndarray,
    y_col: np.ndarray,
    z_cols: Sequence[np.ndarray],
    rx: int,
    ry: int,
    rz: Sequence[int],
    compress_threshold: int = 4,
) -> tuple[np.ndarray, int]:
    """Counts ``N[z, x, y]`` plus the *structural* number of Z configurations.

    The returned array's first axis may be smaller than the structural
    ``prod(rz)`` when compression kicked in (empty slices dropped); the
    structural count is returned separately because the classical G^2
    degrees of freedom depend on it.

    ``compress_threshold``: compress Z codes whenever the structural config
    count exceeds ``compress_threshold * m``.
    """
    m = x_col.shape[0]
    nz_structural = n_configurations(rz)
    if z_cols:
        z_codes, _ = encode_columns(list(z_cols), list(rz))
        if nz_structural > compress_threshold * max(m, 1):
            # Dense axis would be mostly empty slices: compress.
            _, z_codes = np.unique(z_codes, return_inverse=True)
            nz_dense = int(z_codes.max()) + 1 if m else 0
        else:
            nz_dense = nz_structural
    else:
        z_codes = None
        nz_dense = 1

    if z_codes is None:
        cell = x_col.astype(np.int64) * ry + y_col
    else:
        cell = (z_codes * rx + x_col) * ry + y_col
    counts = np.bincount(cell, minlength=nz_dense * rx * ry).reshape(nz_dense, rx, ry)
    return counts, nz_structural


def ci_counts(
    x_col: np.ndarray,
    y_col: np.ndarray,
    z_cols: Sequence[np.ndarray],
    rx: int,
    ry: int,
    rz: Sequence[int],
    compress_threshold: int = 4,
    xy_codes: np.ndarray | None = None,
    z_codes: np.ndarray | None = None,
) -> tuple[np.ndarray, int, bool]:
    """Counts ``N[z, x, y]`` for one CI test, with optional precomputed codes.

    This is the single table-construction entry point shared by the CI
    testers and the :mod:`repro.engine` sufficient-statistics cache: both
    paths produce byte-identical tables because they run this exact code.

    ``xy_codes`` (``x * ry + y`` per sample) and ``z_codes`` (mixed-radix
    encoding of the conditioning columns, *pre-compression*) may be supplied
    to skip re-encoding — the group-evaluation and encoding-cache reuse
    hooks.

    Returns ``(counts, nz_structural, dense)`` where ``dense`` reports
    whether the first axis covers every structural Z configuration (i.e.
    compression did **not** kick in) — dense tables can later be
    marginalized exactly, compressed ones cannot.
    """
    m = x_col.shape[0]
    nz_structural = n_configurations(rz)
    if xy_codes is None:
        xy_codes = x_col.astype(np.int64) * ry + y_col
    if rz:
        if z_codes is None:
            z_codes, _ = encode_columns(list(z_cols), list(rz))
        if nz_structural > compress_threshold * max(m, 1):
            _, z_codes = np.unique(z_codes, return_inverse=True)
            nz_dense = int(z_codes.max()) + 1 if m else 0
            dense = False
        else:
            nz_dense = nz_structural
            dense = True
        cell = z_codes * (rx * ry) + xy_codes
    else:
        nz_dense = 1
        dense = True
        cell = xy_codes
    counts = np.bincount(cell, minlength=nz_dense * rx * ry).reshape(nz_dense, rx, ry)
    return counts, nz_structural, dense


def group_ci_counts(
    xy_codes: np.ndarray,
    z_codes_per_set: Sequence[np.ndarray | None],
    nz_per_set: Sequence[int],
    rx: int,
    ry: int,
) -> np.ndarray:
    """All contingency tables of one endpoint group from a single bincount.

    This is the batched group kernel (module docstring): the ``gs`` sets of
    a group share the endpoints ``(x, y)``, so their per-sample cell codes
    differ only by the conditioning codes and a per-set offset.  Set ``k``
    occupies the code range ``[k * nz_max * rx * ry, (k + 1) * nz_max * rx *
    ry)`` where ``nz_max = max(nz_per_set)``; one ``np.bincount`` over the
    concatenated codes of all sets fills every table at once.

    Parameters
    ----------
    xy_codes:
        Per-sample endpoint cell codes ``x * ry + y`` (shared by the group).
    z_codes_per_set:
        Per-set *dense* mixed-radix conditioning codes: either a sequence
        of 1-D arrays (``None`` for the empty conditioning set) or a 2-D
        ``(n_sets, m)`` array (the vectorized group-encoding fast path).
        Every set must be dense — i.e. its structural ``nz`` is the actual
        first-axis size; the caller is responsible for routing compressed
        sets to the looped path.
    nz_per_set:
        Structural configuration count of each set.
    rx, ry:
        Endpoint arities.

    Returns
    -------
    A ``(n_sets, nz_max, rx, ry)`` integer stack; set ``k``'s table is the
    slice ``[k, :nz_per_set[k]]`` and is bit-identical to the table a
    per-set :func:`ci_counts` call would have built (rows beyond ``nz`` are
    zero padding).
    """
    n_sets = len(nz_per_set)
    if n_sets != len(z_codes_per_set):
        raise ValueError("z_codes_per_set and nz_per_set must have equal length")
    if n_sets == 0:
        raise ValueError("group must contain at least one conditioning set")
    nz_max = int(max(nz_per_set))
    xyr = rx * ry
    stride = nz_max * xyr
    if isinstance(z_codes_per_set, np.ndarray) and z_codes_per_set.ndim == 2:
        # Stacked codes: offset every row in three whole-group in-place
        # operations.  The 2-D form is *consumed* (mutated) — callers pass
        # a freshly built group encoding they no longer need.
        cells2d = z_codes_per_set
        cells2d *= xyr
        cells2d += xy_codes
        cells2d += (np.arange(n_sets, dtype=np.int64) * stride)[:, None]
        cells = cells2d.ravel()
    else:
        parts: list[np.ndarray] = []
        for k, z_codes in enumerate(z_codes_per_set):
            if z_codes is None:
                cell = xy_codes + k * stride
            else:
                cell = z_codes * xyr
                cell += xy_codes
                if k:
                    cell += k * stride
            parts.append(cell)
        cells = parts[0] if n_sets == 1 else np.concatenate(parts)
    counts = np.bincount(cells, minlength=n_sets * stride)
    return counts.reshape(n_sets, nz_max, rx, ry)


def marginalize_table(
    table: np.ndarray,
    dims: Sequence[int],
    keep: Sequence[int],
) -> np.ndarray:
    """Exact marginal of a dense joint-count table.

    ``table`` is any array reshapeable to ``dims`` (one axis per variable);
    ``keep`` lists the axis positions to retain, *in the output's axis
    order* (so it both selects and permutes).  All other axes are summed
    out.  Counts are integers, so the marginal equals what a direct scan
    of the data would have produced — this is what lets the stats cache
    answer a lower-order query from a cached higher-order table.
    """
    arr = np.asarray(table).reshape(tuple(dims))
    keep = list(keep)
    drop = tuple(i for i in range(arr.ndim) if i not in keep)
    if drop:
        arr = arr.sum(axis=drop)
        # Axes shift down after the sum: recompute each kept axis's position.
        remaining = [i for i in range(len(dims)) if i not in drop]
        pos = {axis: i for i, axis in enumerate(remaining)}
        keep = [pos[axis] for axis in keep]
    return np.ascontiguousarray(arr.transpose(keep))


def marginal_tables(
    counts: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Marginals ``(N[x,+,z], N[+,y,z], N[+,+,z])`` of a ``(nz, rx, ry)``
    table, in the paper's ``N_{x+z}, N_{+yz}, N_{++z}`` notation."""
    n_xz = counts.sum(axis=2)  # (nz, rx)
    n_yz = counts.sum(axis=1)  # (nz, ry)
    n_z = n_xz.sum(axis=1)  # (nz,)
    return n_xz, n_yz, n_z
