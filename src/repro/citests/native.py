"""Optional native backend for the fused cell-code + bincount kernel.

The pure-NumPy fused kernel (:func:`repro.citests.contingency.
fused_cell_counts`) makes four passes over the ``(n_rows, m)`` cell matrix
(scale multiply, endpoint gather, offset add, bincount).  A native loop
does all of it in **one** pass per row::

    out[z[r, i] * scale[r] + xy[group[r], i] + offset[r]] += 1

Counting is pure integer arithmetic over the same codes, so the native
histogram is *bit-identical* to the NumPy path — it only changes memory
traffic, which is exactly why the dtype narrowing (int32 cell codes) pays
off here where ``np.bincount`` would widen to ``intp`` internally anyway.

Backend auto-detection at import, in order:

1. **numba** — ``@njit`` over the loop above (dtype dispatch for free);
2. **cext** — a ~20-line C file compiled on demand with the system C
   compiler (``$CC``/``cc``/``gcc``) into a per-user cached shared object
   and loaded through ``ctypes``; compilation happens at most once per
   machine (the cache file is keyed by a source hash);
3. **None** — pure NumPy everywhere (the container may lack both).

``REPRO_NATIVE`` environment variable:

* ``0``/``false``/``off`` — disable the native path entirely;
* ``numba`` / ``cext`` — restrict detection to that backend (used by the
  CI leg that forces the native path and by A/B benchmarking);
* unset / anything else — auto-detect.

Every entry point degrades gracefully: a failed probe or compile leaves
the module in the pure-NumPy state, never raises at import.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import tempfile

import numpy as np

__all__ = ["native_kind", "native_available", "native_fused_counts"]

_ENV = os.environ.get("REPRO_NATIVE", "").strip().lower()
_DISABLED = _ENV in ("0", "false", "off", "no")

_C_SOURCE = """
#include <stdint.h>

void fused_counts_i64(const int64_t *z, const int64_t *xy, const int64_t *rg,
                      const int64_t *scale, const int64_t *off,
                      int64_t n, int64_t m, int64_t *out)
{
    for (int64_t r = 0; r < n; ++r) {
        const int64_t *zr = z + r * m;
        const int64_t *pair = xy + rg[r] * m;
        int64_t s = scale[r], o = off[r];
        for (int64_t i = 0; i < m; ++i)
            out[zr[i] * s + pair[i] + o] += 1;
    }
}

void fused_counts_i32(const int32_t *z, const int32_t *xy, const int64_t *rg,
                      const int64_t *scale, const int64_t *off,
                      int64_t n, int64_t m, int64_t *out)
{
    for (int64_t r = 0; r < n; ++r) {
        const int32_t *zr = z + r * m;
        const int32_t *pair = xy + rg[r] * m;
        int64_t s = scale[r], o = off[r];
        for (int64_t i = 0; i < m; ++i)
            out[(int64_t)zr[i] * s + (int64_t)pair[i] + o] += 1;
    }
}
"""

_BACKEND: str | None = None
_NB_FUSED = None  # numba dispatcher
_C_LIB = None  # ctypes handles: {"i32": fn, "i64": fn}


# ---------------------------------------------------------------------- #
# detection
# ---------------------------------------------------------------------- #
def _probe_numba() -> bool:
    global _NB_FUSED
    try:
        import numba
    except Exception:  # repro: ignore[REPRO006] - any import failure means "no backend"
        return False
    try:

        @numba.njit(cache=False)
        def _fused(z, xy, rg, scale, off, out):  # pragma: no cover - jitted
            n, m = z.shape
            for r in range(n):
                zr = z[r]
                pair = xy[rg[r]]
                s = scale[r]
                o = off[r]
                for i in range(m):
                    out[zr[i] * s + pair[i] + o] += 1

        _NB_FUSED = _fused
        return True
    except Exception:  # pragma: no cover - numba present but broken  # repro: ignore[REPRO006]
        return False


def _find_compiler() -> str | None:
    import shutil

    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return cand
    return None


def _probe_cext() -> bool:
    global _C_LIB
    cc = _find_compiler()
    if cc is None:
        return False
    digest = hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:12]
    try:
        uid = os.getuid()
    except AttributeError:  # pragma: no cover - non-POSIX
        uid = 0
    so_path = os.path.join(tempfile.gettempdir(), f"repro_native_{digest}_{uid}.so")
    try:
        if not os.path.exists(so_path):
            src_path = so_path[:-3] + ".c"
            with open(src_path, "w", encoding="ascii") as fh:
                fh.write(_C_SOURCE)
            tmp_so = so_path + f".tmp{os.getpid()}"
            subprocess.run(
                [cc, "-O3", "-shared", "-fPIC", "-o", tmp_so, src_path],
                check=True,
                capture_output=True,
                timeout=60,
            )
            os.replace(tmp_so, so_path)  # atomic vs concurrent compilers
        import ctypes

        from numpy.ctypeslib import ndpointer

        lib = ctypes.CDLL(so_path)
        i64p = ndpointer(np.int64, flags="C_CONTIGUOUS")
        i32p = ndpointer(np.int32, flags="C_CONTIGUOUS")
        lib.fused_counts_i64.restype = None
        lib.fused_counts_i64.argtypes = [
            i64p, i64p, i64p, i64p, i64p, ctypes.c_int64, ctypes.c_int64, i64p,
        ]
        lib.fused_counts_i32.restype = None
        lib.fused_counts_i32.argtypes = [
            i32p, i32p, i64p, i64p, i64p, ctypes.c_int64, ctypes.c_int64, i64p,
        ]
        _C_LIB = {"i32": lib.fused_counts_i32, "i64": lib.fused_counts_i64}
        return True
    except Exception:  # repro: ignore[REPRO006] - compile/link probe: failure means "no backend"
        return False


def _detect() -> str | None:
    if _DISABLED:
        return None
    if _ENV == "numba":
        return "numba" if _probe_numba() else None
    if _ENV == "cext":
        return "cext" if _probe_cext() else None
    if _probe_numba():
        return "numba"
    if _probe_cext():
        return "cext"
    return None


_BACKEND = _detect()


# ---------------------------------------------------------------------- #
# public API
# ---------------------------------------------------------------------- #
def native_kind() -> str | None:
    """``"numba"``, ``"cext"`` or ``None`` (pure NumPy)."""
    return _BACKEND


def native_available() -> bool:
    return _BACKEND is not None


def native_fused_counts(
    z2d: np.ndarray,
    xy_mat: np.ndarray,
    row_group: np.ndarray,
    scales: np.ndarray,
    offsets: np.ndarray,
    out: np.ndarray,
) -> bool:
    """Accumulate the fused histogram into ``out`` (int64, pre-zeroed).

    Returns ``False`` when no backend is available or the dtypes are not
    handled — the caller then runs the NumPy path.  Unlike the NumPy path
    the inputs are **not** mutated.
    """
    if _BACKEND is None:
        return False
    if z2d.dtype != xy_mat.dtype or z2d.dtype not in (np.int32, np.int64):
        return False
    n, m = z2d.shape
    if _BACKEND == "numba":
        _NB_FUSED(z2d, xy_mat, row_group, scales, offsets, out)
        return True
    fn = _C_LIB["i32" if z2d.dtype == np.int32 else "i64"]
    fn(z2d, xy_mat, row_group, scales, offsets, n, m, out)
    return True
