"""Deliberately interpreted G^2 tester — the pcalg/tetrad-speed baseline.

The paper's Table III shows pcalg and tetrad running two to three orders of
magnitude slower than Fast-BNS-seq.  Their gap comes from per-sample
interpreted work in the contingency-table loop (R/Java dispatch per cell
update).  This tester reproduces that regime faithfully *in Python*: one
dictionary update per sample per test, no vectorisation.  Decisions are
bit-identical to :class:`~repro.citests.gsquare.GSquareTest` (same
statistic, dof and threshold), so it plugs into every engine as a slow but
correct baseline.

Never use this for real workloads — that is the point.
"""

from __future__ import annotations

from math import log
from collections.abc import Sequence

from ..datasets.dataset import DiscreteDataset
from .base import CITestCounters, CITestResult
from .contingency import n_configurations
from .gsquare import _chi2_sf

__all__ = ["NaiveGSquareTest"]


class NaiveGSquareTest:
    """Per-sample-loop G^2 tester (same interface as ``GSquareTest``)."""

    def __init__(
        self,
        dataset: DiscreteDataset,
        alpha: float = 0.05,
        dof_adjust: str = "structural",
    ) -> None:
        if not 0 < alpha < 1:
            raise ValueError("alpha must be in (0, 1)")
        if dof_adjust not in ("structural", "slices"):
            raise ValueError("dof_adjust must be 'structural' or 'slices'")
        self.dataset = dataset
        self.alpha = float(alpha)
        self.dof_adjust = dof_adjust
        self.counters = CITestCounters()

    def test(self, x: int, y: int, s: Sequence[int]) -> CITestResult:
        ds = self.dataset
        m = ds.n_samples
        s = tuple(int(v) for v in s)
        rx, ry = ds.arity(x), ds.arity(y)
        rz = [ds.arity(v) for v in s]
        nz_structural = n_configurations(rz)

        x_col = ds.column(x)
        y_col = ds.column(y)
        z_cols = ds.columns(s)

        # Interpreted contingency fill: one dict update per sample.
        counts: dict[tuple[int, int, int], int] = {}
        for i in range(m):
            z_code = 0
            for j, zc in enumerate(z_cols):
                z_code = z_code * rz[j] + int(zc[i])
            key = (z_code, int(x_col[i]), int(y_col[i]))
            counts[key] = counts.get(key, 0) + 1

        # Interpreted marginals.
        n_xz: dict[tuple[int, int], int] = {}
        n_yz: dict[tuple[int, int], int] = {}
        n_z: dict[int, int] = {}
        for (z_code, xv, yv), c in counts.items():
            n_xz[(z_code, xv)] = n_xz.get((z_code, xv), 0) + c
            n_yz[(z_code, yv)] = n_yz.get((z_code, yv), 0) + c
            n_z[z_code] = n_z.get(z_code, 0) + c

        stat = 0.0
        for (z_code, xv, yv), c in counts.items():
            expected = n_xz[(z_code, xv)] * n_yz[(z_code, yv)] / n_z[z_code]
            stat += c * log(c / expected)
        stat = max(2.0 * stat, 0.0)

        if self.dof_adjust == "structural":
            dof = (rx - 1) * (ry - 1) * float(nz_structural)
        else:
            dof = (rx - 1) * (ry - 1) * float(max(len(n_z), 1))
        p = _chi2_sf(stat, dof)
        self.counters.record(
            depth=len(s), m=m, cells=len(counts), logs=len(counts), xy_reused=False
        )
        return CITestResult(
            x=x, y=y, s=s, statistic=stat, dof=dof, p_value=p, independent=p > self.alpha
        )

    def test_group(self, x: int, y: int, sets: Sequence[Sequence[int]]) -> list[CITestResult]:
        return [self.test(x, y, s) for s in sets]
