"""d-separation oracle CI test.

Replaces the statistical test by exact d-separation queries against a known
DAG.  With this oracle, PC-stable *provably* recovers the true CPDAG, so the
oracle turns the whole learning pipeline into a deterministically checkable
system — the backbone of the integration test-suite and a useful tool for
studying algorithmic behaviour (CI-test counts, work-pool dynamics) without
statistical noise.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..graphs.separation import DSeparationOracle
from ..networks.bayesnet import DiscreteBayesianNetwork
from .base import CITestCounters, CITestResult

__all__ = ["OracleCITest"]


class OracleCITest:
    """CI tester answering from the true DAG instead of data.

    ``n_samples`` only feeds the work counters (cost accounting for the
    simulator); decisions are exact.
    """

    def __init__(
        self,
        n_nodes: int,
        edges: Sequence[tuple[int, int]],
        n_samples: int = 1,
    ) -> None:
        self._oracle = DSeparationOracle(n_nodes, list(edges))
        self.alpha = 0.05  # irrelevant to decisions; kept for interface parity
        self.counters = CITestCounters()
        self._m = int(n_samples)

    @classmethod
    def from_network(
        cls, network: DiscreteBayesianNetwork, n_samples: int = 1
    ) -> "OracleCITest":
        return cls(network.n_nodes, network.edges(), n_samples)

    @property
    def n_nodes(self) -> int:
        return self._oracle.n_nodes

    def test(self, x: int, y: int, s: Sequence[int]) -> CITestResult:
        s = tuple(int(v) for v in s)
        independent = self._oracle.query(x, y, s)
        self.counters.record(depth=len(s), m=self._m, cells=0, logs=0, xy_reused=False)
        return CITestResult(
            x=x,
            y=y,
            s=s,
            statistic=0.0 if independent else float("inf"),
            dof=1.0,
            p_value=1.0 if independent else 0.0,
            independent=independent,
        )

    def test_group(self, x: int, y: int, sets: Sequence[Sequence[int]]) -> list[CITestResult]:
        results = []
        for i, s in enumerate(sets):
            res = self.test(x, y, s)
            if i > 0:
                # test() recorded a full-cost access; adjust to group reuse.
                self.counters.data_accesses -= 2 * self._m
            results.append(res)
        return results
