"""Conditional-independence tests: G^2, chi^2, mutual information, the
interpreted naive baseline and the d-separation oracle."""

from .arena import KernelArena
from .base import CITestCounters, CITestResult, ConditionalIndependenceTest
from .chisquare import ChiSquareTest
from .contingency import (
    code_dtype,
    contingency_table,
    encode_columns,
    fused_cell_counts,
    group_ci_counts,
    n_configurations,
)
from .gsquare import GSquareTest, g2_test_from_counts
from .mutual_info import MutualInformationTest
from .naive import NaiveGSquareTest
from .native import native_available, native_kind
from .oracle import OracleCITest
from .tablebase import ContingencyTableTest

__all__ = [
    "CITestResult",
    "CITestCounters",
    "ConditionalIndependenceTest",
    "ContingencyTableTest",
    "GSquareTest",
    "g2_test_from_counts",
    "ChiSquareTest",
    "KernelArena",
    "MutualInformationTest",
    "NaiveGSquareTest",
    "OracleCITest",
    "code_dtype",
    "contingency_table",
    "encode_columns",
    "fused_cell_counts",
    "group_ci_counts",
    "n_configurations",
    "native_available",
    "native_kind",
]
