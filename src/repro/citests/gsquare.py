"""G^2 (log-likelihood-ratio) conditional independence test.

The paper's experiments use the G^2 statistic (Sec. III-B, Sec. V-A)::

    G^2 = 2 * sum_{x,y,z} N_xyz * log(N_xyz / E_xyz),
    E_xyz = N_{x+z} * N_{+yz} / N_{++z}

G^2 is asymptotically chi-squared with ``(|X|-1)(|Y|-1) * prod_z |Z|``
degrees of freedom; the independence hypothesis is *accepted* when the
p-value exceeds the significance level (alpha = 0.05 in all paper
experiments).

Implementation notes
--------------------
* p-values use ``scipy.special.gammaincc(dof/2, stat/2)`` — the chi-squared
  survival function without ``scipy.stats`` dispatch overhead (thousands of
  tests per depth make per-call overhead visible).
* Cells with ``N = 0`` contribute zero to the sum (the usual convention);
  their expected counts may legitimately be zero too.
* ``dof_adjust="slices"`` ignores empty Z slices when counting degrees of
  freedom (bnlearn-style adjustment); the default ``"structural"`` matches
  the classical definition used by the paper.
* ``test_group`` encodes the shared ``(x, y)`` cell index once per group —
  the NumPy analog of Fast-BNS keeping the X/Y columns cache-resident
  across a gs-sized group of tests (Sec. IV-B).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy.special import gammaincc

from ..datasets.dataset import DiscreteDataset
from .base import CITestCounters, CITestResult
from .contingency import ci_counts

__all__ = ["GSquareTest", "g2_test_from_counts"]


def _chi2_sf(stat: float, dof: float) -> float:
    if dof <= 0:
        return 1.0
    return float(gammaincc(dof / 2.0, stat / 2.0))


class GSquareTest:
    """G^2 CI tester bound to one dataset.

    Parameters
    ----------
    dataset:
        The observations (either storage layout).
    alpha:
        Significance level; p > alpha accepts independence.
    dof_adjust:
        ``"structural"`` (classical, the paper's definition) or ``"slices"``
        (count only non-empty Z slices).
    compress_threshold:
        Compress Z codes through ``np.unique`` when the structural
        configuration count exceeds ``compress_threshold * n_samples``;
        bounds memory at any depth.
    stats_cache:
        Optional :class:`~repro.engine.statscache.SufficientStatsCache`.
        When given, contingency tables are pulled through the cache
        (memoized by variable tuple, served by exact marginalization when
        a cached dense superset exists) instead of being rebuilt from the
        data on every test.  Results are bit-identical either way —
        construction is shared via :func:`repro.citests.contingency.ci_counts`.
    """

    def __init__(
        self,
        dataset: DiscreteDataset,
        alpha: float = 0.05,
        dof_adjust: str = "structural",
        compress_threshold: int = 4,
        stats_cache=None,
    ) -> None:
        if not 0 < alpha < 1:
            raise ValueError("alpha must be in (0, 1)")
        if dof_adjust not in ("structural", "slices"):
            raise ValueError("dof_adjust must be 'structural' or 'slices'")
        self.dataset = dataset
        self.alpha = float(alpha)
        self.dof_adjust = dof_adjust
        self.compress_threshold = int(compress_threshold)
        self.counters = CITestCounters()
        self._builder = None
        if stats_cache is not None:
            from ..engine.statscache import CachedTableBuilder

            self._builder = CachedTableBuilder(
                dataset, stats_cache, compress_threshold=self.compress_threshold
            )

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def test(self, x: int, y: int, s: Sequence[int]) -> CITestResult:
        """Single CI test ``I(x, y | s)``."""
        s = tuple(int(v) for v in s)
        # With a stats cache the builder resolves (and memoizes) the XY
        # encoding lazily — only on a table miss — so a warm path never
        # re-reads the endpoint columns.
        xy_codes = None if self._builder is not None else self._encode_xy(x, y)
        return self._test_with_xy(x, y, s, xy_codes, xy_reused=False)

    def test_group(self, x: int, y: int, sets: Sequence[Sequence[int]]) -> list[CITestResult]:
        """Evaluate several conditioning sets sharing endpoints ``(x, y)``.

        The XY encoding is computed once and reused for every set in the
        group — the group-size (gs) memory-reuse optimisation.
        """
        xy_codes = None if self._builder is not None else self._encode_xy(x, y)
        out: list[CITestResult] = []
        for i, s in enumerate(sets):
            s = tuple(int(v) for v in s)
            out.append(self._test_with_xy(x, y, s, xy_codes, xy_reused=i > 0))
        return out

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _encode_xy(self, x: int, y: int) -> np.ndarray:
        ds = self.dataset
        ry = ds.arity(y)
        return ds.column(x).astype(np.int64) * ry + ds.column(y)

    def _test_with_xy(
        self,
        x: int,
        y: int,
        s: tuple[int, ...],
        xy_codes: np.ndarray,
        xy_reused: bool,
    ) -> CITestResult:
        ds = self.dataset
        m = ds.n_samples
        rx, ry = ds.arity(x), ds.arity(y)
        rz = [ds.arity(v) for v in s]

        from_cache: bool | None = None
        z_reused = False
        if self._builder is not None:
            counts, nz_structural, from_cache, z_reused, xy_cached = self._builder.ci_counts(
                x, y, s, xy_codes=xy_codes
            )
            xy_reused = xy_reused or xy_cached
        else:
            counts, nz_structural, _dense = ci_counts(
                ds.column(x),
                ds.column(y),
                ds.columns(s),
                rx,
                ry,
                rz,
                compress_threshold=self.compress_threshold,
                xy_codes=xy_codes,
            )

        stat, n_logs, n_nonempty_slices = _g2_from_counts(counts)
        if self.dof_adjust == "structural":
            dof = (rx - 1) * (ry - 1) * float(nz_structural)
        else:
            dof = (rx - 1) * (ry - 1) * float(max(n_nonempty_slices, 1))
        p = _chi2_sf(stat, dof)
        self.counters.record(
            depth=len(s),
            m=m,
            cells=counts.size,
            logs=n_logs,
            xy_reused=xy_reused,
            from_cache=from_cache,
            z_reused=z_reused,
        )
        return CITestResult(
            x=x,
            y=y,
            s=s,
            statistic=stat,
            dof=dof,
            p_value=p,
            independent=p > self.alpha,
        )


def g2_test_from_counts(
    counts: np.ndarray,
    nz_structural: int,
    rx: int,
    ry: int,
    alpha: float,
    dof_adjust: str = "structural",
) -> tuple[float, float, float, bool]:
    """Full G^2 decision from a pre-built ``(nz, rx, ry)`` table.

    Used by the sample-level parallel backend, whose workers build partial
    tables that the master merges before testing.  Returns
    ``(statistic, dof, p_value, independent)``.
    """
    stat, _n_logs, n_nonempty = _g2_from_counts(counts)
    if dof_adjust == "structural":
        dof = (rx - 1) * (ry - 1) * float(nz_structural)
    else:
        dof = (rx - 1) * (ry - 1) * float(max(n_nonempty, 1))
    p = _chi2_sf(stat, dof)
    return stat, dof, p, p > alpha


def _g2_from_counts(counts: np.ndarray) -> tuple[float, int, int]:
    """G^2 statistic from an ``(nz, rx, ry)`` table.

    Returns ``(statistic, n_log_evaluations, n_nonempty_z_slices)``.
    """
    n_xz = counts.sum(axis=2, dtype=np.float64)  # (nz, rx)
    n_yz = counts.sum(axis=1, dtype=np.float64)  # (nz, ry)
    n_z = n_xz.sum(axis=1)  # (nz,)
    nonempty = n_z > 0
    n_nonempty = int(np.count_nonzero(nonempty))
    observed = counts.astype(np.float64)
    mask = observed > 0
    n_logs = int(np.count_nonzero(mask))
    if n_logs == 0:
        return 0.0, 0, n_nonempty
    # E_xyz = N_x+z * N_+yz / N_++z ; only needed where N > 0, and there
    # N_x+z, N_+yz, N_++z are all > 0, so the division is safe on the mask.
    with np.errstate(divide="ignore", invalid="ignore"):
        expected = n_xz[:, :, None] * n_yz[:, None, :] / n_z[:, None, None]
    obs = observed[mask]
    exp = expected[mask]
    stat = 2.0 * float(np.sum(obs * np.log(obs / exp)))
    # Numerical noise can push an exactly-zero statistic slightly negative.
    return max(stat, 0.0), n_logs, n_nonempty
