"""G^2 (log-likelihood-ratio) conditional independence test.

The paper's experiments use the G^2 statistic (Sec. III-B, Sec. V-A)::

    G^2 = 2 * sum_{x,y,z} N_xyz * log(N_xyz / E_xyz),
    E_xyz = N_{x+z} * N_{+yz} / N_{++z}

G^2 is asymptotically chi-squared with ``(|X|-1)(|Y|-1) * prod_z |Z|``
degrees of freedom; the independence hypothesis is *accepted* when the
p-value exceeds the significance level (alpha = 0.05 in all paper
experiments).

Implementation notes
--------------------
* p-values use ``scipy.special.gammaincc(dof/2, stat/2)`` — the chi-squared
  survival function without ``scipy.stats`` dispatch overhead (thousands of
  tests per depth make per-call overhead visible).
* Cells with ``N = 0`` contribute zero to the sum (the usual convention);
  their expected counts may legitimately be zero too.
* ``dof_adjust="slices"`` ignores empty Z slices when counting degrees of
  freedom (bnlearn-style adjustment); the default ``"structural"`` matches
  the classical definition used by the paper.
* ``test_group`` runs through the batched group kernel — tables from one
  offset-stacked ``bincount``, statistics over the stacked array, one
  ``gammaincc`` per group — with the looped per-set path kept as the
  reference oracle (see :mod:`repro.citests.tablebase`).
"""

from __future__ import annotations

import numpy as np

from .tablebase import ContingencyTableTest, chi2_sf

__all__ = ["GSquareTest", "g2_test_from_counts"]

# Backwards-compatible alias (historically private to this module).
_chi2_sf = chi2_sf


def _g2_elementwise(
    counts: np.ndarray, scratch=None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-cell G^2 terms of a ``(..., nz, rx, ry)`` count array.

    Returns ``(terms, mask, n_z)`` where ``terms`` sums (over cells) to
    ``G^2 / 2``, ``mask`` marks the ``N > 0`` cells whose logs are billed,
    and ``n_z`` are the per-slice totals.  Shared by the looped single-table
    path and the fused stack path, so both compute bit-identical values
    cell for cell.

    With ``scratch`` (a :class:`~repro.citests.tablebase._Scratch` over the
    kernel arena) every large intermediate lives in a reused buffer — the
    same ufuncs applied to the same operands, only the destinations differ,
    so the values are bit-identical to the allocating form.  The returned
    arrays are only valid until the next scratch-backed call.
    """
    shape = counts.shape
    if scratch is None:
        n_xz = counts.sum(axis=-1, dtype=np.float64)
        n_yz = counts.sum(axis=-2, dtype=np.float64)
        n_z = n_xz.sum(axis=-1)
        observed = counts.astype(np.float64)
        mask = observed > 0
        expected = n_xz[..., :, None] * n_yz[..., None, :]
        ratio = np.ones_like(observed)
    else:
        n_xz = counts.sum(axis=-1, dtype=np.float64, out=scratch.f64("nxz", shape[:-1]))
        n_yz = counts.sum(
            axis=-2, dtype=np.float64, out=scratch.f64("nyz", shape[:-2] + shape[-1:])
        )
        n_z = n_xz.sum(axis=-1, out=scratch.f64("nz", shape[:-2]))
        # The integer count array serves as ``observed`` directly: the
        # comparison, the division and the final multiply all promote it
        # to float64 element by element — exactly the values the looped
        # branch's materialised float copy feeds them — without the cast
        # pass or the scratch slot.
        observed = counts
        mask = np.greater(counts, 0, out=scratch.bool_("mask", shape))
        expected = np.multiply(
            n_xz[..., :, None], n_yz[..., None, :], out=scratch.f64("exp", shape)
        )
        ratio = scratch.f64("terms", shape)
        ratio.fill(1.0)
    # E_xyz = N_x+z * N_+yz / N_++z ; only needed where N > 0, and there
    # N_x+z, N_+yz, N_++z are all > 0, so the division is safe on the mask.
    with np.errstate(divide="ignore", invalid="ignore"):
        expected /= n_z[..., None, None]
    np.divide(observed, expected, out=ratio, where=mask)
    if scratch is None:
        np.log(ratio, out=ratio)
    else:
        # Fused stacks are sparse (deep sets leave most cells empty), so
        # the transcendental is masked to the occupied cells.  Masked
        # cells keep the 1.0 fill and the multiply below zeroes the term
        # either way — ``0 * 1.0 == 0 * log(1.0) == +0.0`` exactly — so
        # the terms stay bit-identical to the looped oracle's full log.
        np.log(ratio, out=ratio, where=mask)
    ratio *= observed
    return ratio, mask, n_z


def _g2_from_counts(counts: np.ndarray) -> tuple[float, int, int]:
    """G^2 statistic from an ``(nz, rx, ry)`` table.

    Returns ``(statistic, n_log_evaluations, n_nonempty_z_slices)``.
    """
    terms, mask, n_z = _g2_elementwise(counts)
    n_nonempty = int(np.count_nonzero(n_z > 0))
    n_logs = int(np.count_nonzero(mask))
    if n_logs == 0:
        return 0.0, 0, n_nonempty
    stat = 2.0 * float(terms.sum())
    # Numerical noise can push an exactly-zero statistic slightly negative.
    return max(stat, 0.0), n_logs, n_nonempty


class GSquareTest(ContingencyTableTest):
    """G^2 CI tester bound to one dataset.

    All construction/caching/batching parameters are documented on
    :class:`~repro.citests.tablebase.ContingencyTableTest`.
    """

    def _stat_from_counts(self, counts: np.ndarray) -> tuple[float, int, int]:
        return _g2_from_counts(counts)

    def _elementwise(
        self, stack: np.ndarray, scratch=None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return _g2_elementwise(stack, scratch)

    def _finalize_stats(self, sums: np.ndarray) -> np.ndarray:
        return np.maximum(2.0 * sums, 0.0)


def g2_test_from_counts(
    counts: np.ndarray,
    nz_structural: int,
    rx: int,
    ry: int,
    alpha: float,
    dof_adjust: str = "structural",
) -> tuple[float, float, float, bool]:
    """Full G^2 decision from a pre-built ``(nz, rx, ry)`` table.

    Used by the sample-level parallel backend, whose workers build partial
    tables that the master merges before testing.  Returns
    ``(statistic, dof, p_value, independent)``.
    """
    stat, _n_logs, n_nonempty = _g2_from_counts(counts)
    if dof_adjust == "structural":
        dof = (rx - 1) * (ry - 1) * float(nz_structural)
    else:
        dof = (rx - 1) * (ry - 1) * float(max(n_nonempty, 1))
    p = chi2_sf(stat, dof)
    return stat, dof, p, p > alpha
