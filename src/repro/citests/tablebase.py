"""Shared machinery of the contingency-table CI testers.

:class:`GSquareTest <repro.citests.gsquare.GSquareTest>` and
:class:`ChiSquareTest <repro.citests.chisquare.ChiSquareTest>` differ only
in the statistic computed from the ``(nz, rx, ry)`` table; everything else
— encodings, table construction, the stats-cache front door, work-counter
accounting and the group-evaluation strategy — lives here once.

Two group-evaluation paths, bit-identical by construction and by test:

* **looped** (``batch_groups=False``): one :func:`ci_counts` and one
  statistic reduction per conditioning set — the seed behaviour, kept as
  the reference oracle for the fused kernel;
* **fused** (default): :meth:`ContingencyTableTest.test_groups` takes any
  number of endpoint groups and evaluates every dense conditioning set of
  every group through one *megagroup* pipeline per wave:

  - cell codes for all sets of all groups are built into one arena-backed
    ``(n_sets_total, m)`` matrix (vectorized per-depth mixed-radix
    encoding over the narrow column matrix, or the cached per-set codes on
    the stats-cache path);
  - each set gets a disjoint base offset in a flat histogram — exactly
    ``nz * rx * ry`` cells per set, no padding — and a single
    ``np.bincount`` (or the native one-pass loop,
    :mod:`repro.citests.native`) fills every table of every group at once
    (:func:`~repro.citests.contingency.fused_cell_counts`);
  - sets are bucketed by exact table shape ``(rx, ry, nz)`` for the
    statistic stage: per bucket, one stacked elementwise pass into arena
    scratch and one contiguous-row reduction per set (the same value
    sequence the looped path reduces, so the float sums are bit-identical);
  - one ``gammaincc`` call covers the whole wave.

  ``test_group`` is the single-group spelling of the same engine.
  Compressed-Z sets (structural ``nz`` beyond ``compress_threshold * m``)
  fall back to the looped path.  With a stats cache attached, planning
  walks groups and sets in order resolving hits and *reserving* exact-size
  slots for the misses (so LRU recency, evictions and hit/miss counters
  replay the looped event sequence bit-for-bit), then the waves build and
  fill the surviving slots in bulk.  Because pending slots are tracked by
  full table key, duplicate and subset-marginalization resolution works
  *across* the fused groups, exactly as a looped pass over the same
  (group, set) stream would have hit them.

All large scratch lives in a :class:`~repro.citests.arena.KernelArena`
(one per tester by default; workers share one per process): steady-state
group evaluation performs zero large allocations.

Work-counter accounting is identical in both paths: per test, the same
``data_accesses``/``table_cells``/``log_ops`` record the looped path would
make (group-position XY reuse, stats-cache hit/miss/encoding flags).  The
:class:`~repro.datasets.encoded.EncodedDataset` memoization layer is
deliberately *not* credited — see its module docstring.
"""

from __future__ import annotations

from itertools import repeat
from collections.abc import Sequence

import numpy as np
from scipy.special import gammaincc

from ..datasets.dataset import DiscreteDataset
from ..datasets.encoded import EncodedDataset
from .arena import KernelArena
from .base import CITestCounters, CITestResult
from .contingency import ci_counts, fused_cell_counts, n_configurations
from .native import native_available

__all__ = ["ContingencyTableTest", "chi2_sf", "chi2_sf_array"]

_UINT8_LIMIT = np.iinfo(np.uint8).max
_UINT16_LIMIT = np.iinfo(np.uint16).max
_INT32_LIMIT = np.iinfo(np.int32).max

#: Wave caps: one fused build is bounded both in histogram cells (the
#: bincount output the statistic stage walks) and in code elements
#: (``n_rows * m``), so arbitrarily large work items stream through the
#: arena in bounded memory instead of sizing it to the whole chunk.
#: The code cap doubles as a cache-blocking parameter: the fill, the
#: endpoint adds and the histogram all re-walk the ``n_rows x m`` code
#: matrix, so waves are sized to keep it (~2 MB at uint16) inside the
#: last-level cache — measured optimum on the alarm/2000 workload, where
#: both smaller (per-wave dispatch overhead) and larger (cache spill)
#: waves are 10-50% slower.
_MAX_WAVE_CELLS = 1 << 20
_MAX_WAVE_CODES = 1 << 20


def _cell_dtype(limit: int, narrow: bool) -> np.dtype:
    """Smallest dtype that holds cell codes in ``[0, limit]`` exactly.

    ``narrow=False`` restricts the choice to the ``int32``/``int64`` pair
    the native kernel dispatches on; the pure-NumPy path narrows all the
    way down (``uint8``/``uint16`` for typical Table II waves), halving
    kernel memory traffic.  Counting is exact at every tier — the codes
    are bounded by construction, and ``np.bincount`` widens internally —
    so the histogram is bit-identical across tiers.
    """
    if narrow:
        if limit <= _UINT8_LIMIT:
            return np.dtype(np.uint8)
        if limit <= _UINT16_LIMIT:
            return np.dtype(np.uint16)
    if limit <= _INT32_LIMIT:
        return np.dtype(np.int32)
    return np.dtype(np.int64)


def chi2_sf(stat: float, dof: float) -> float:
    """Chi-squared survival function without ``scipy.stats`` dispatch."""
    if dof <= 0:
        return 1.0
    return float(gammaincc(dof / 2.0, stat / 2.0))


def chi2_sf_array(stats: np.ndarray, dofs: np.ndarray) -> np.ndarray:
    """Vectorized :func:`chi2_sf` — one ``gammaincc`` call per wave.

    Elementwise identical to the scalar form (same ufunc, applied to the
    same float64 values).
    """
    halved = np.asarray(stats, dtype=np.float64) / 2.0
    positive = dofs > 0
    if positive.all():
        return gammaincc(dofs / 2.0, halved)
    safe = np.where(positive, dofs, 1.0)
    return np.where(positive, gammaincc(safe / 2.0, halved), 1.0)


class _Scratch:
    """Arena adapter handed to the ``_elementwise`` hooks.

    Each key names one reusable float64/bool slot; views are valid until
    the same key is taken again (the engine consumes every bucket's terms
    before starting the next).
    """

    __slots__ = ("_arena",)

    def __init__(self, arena: KernelArena) -> None:
        self._arena = arena

    def f64(self, key: str, shape: tuple[int, ...]) -> np.ndarray:
        return self._arena.take("ew_" + key, shape, np.float64)

    def bool_(self, key: str, shape: tuple[int, ...]) -> np.ndarray:
        return self._arena.take("ew_" + key, shape, np.bool_)


class _FusedEntry:
    """One dense (set, group) pair awaiting a wave build."""

    __slots__ = ("g", "i", "s", "rz", "nz", "cells", "z1d", "z_flag", "xy_flag", "offset")

    def __init__(self, g, i, s, rz, nz, cells, z1d, z_flag, xy_flag):
        self.g = g
        self.i = i
        self.s = s
        self.rz = rz
        self.nz = nz
        self.cells = cells
        self.z1d = z1d
        self.z_flag = z_flag
        self.xy_flag = xy_flag
        self.offset = 0


class ContingencyTableTest:
    """Base of the table-driven CI testers (see module docstring).

    Subclasses provide the statistic:

    * ``_stat_from_counts(counts) -> (stat, n_logs, n_nonempty)`` — looped
      single-table path;
    * ``_elementwise(stack, scratch=None) -> (terms, mask, n_z)`` — per-cell
      statistic terms of a ``(..., nz, rx, ry)`` stack (``terms`` sums to
      the pre-scaling statistic over cells, ``mask`` marks the cells billed
      as log/flop work, ``n_z`` are the per-slice totals); when ``scratch``
      is given, the large intermediates come from its arena slots instead
      of fresh allocations — same ufuncs over the same values, so the
      results stay bit-identical;
    * ``_finalize_stats(sums) -> stats`` — scale/clamp the per-set term
      sums into the statistic (e.g. ``max(2 * s, 0)`` for G^2).

    Parameters
    ----------
    dataset:
        The observations (either storage layout).
    alpha:
        Significance level; p > alpha accepts independence.
    dof_adjust:
        ``"structural"`` (classical, the paper's definition) or ``"slices"``
        (count only non-empty Z slices).
    compress_threshold:
        Compress Z codes through ``np.unique`` when the structural
        configuration count exceeds ``compress_threshold * n_samples``;
        bounds memory at any depth (and bounds what the fused kernel will
        stack).
    stats_cache:
        Optional :class:`~repro.engine.statscache.SufficientStatsCache`;
        tables are then pulled through the cache (memoized by variable
        tuple, served by exact marginalization when a cached dense superset
        exists).  Results are bit-identical either way.
    encoded:
        Optional shared :class:`~repro.datasets.encoded.EncodedDataset`
        over the *same* dataset; by default the tester keeps a private one.
    batch_groups:
        ``True`` (default) routes group evaluation through the fused
        kernel; ``False`` keeps the looped per-set reference path.
    arena:
        Optional shared :class:`~repro.citests.arena.KernelArena` (one per
        worker); by default the tester keeps a private one.
    """

    def __init__(
        self,
        dataset: DiscreteDataset,
        alpha: float = 0.05,
        dof_adjust: str = "structural",
        compress_threshold: int = 4,
        stats_cache=None,
        encoded: EncodedDataset | None = None,
        batch_groups: bool = True,
        arena: KernelArena | None = None,
    ) -> None:
        if not 0 < alpha < 1:
            raise ValueError("alpha must be in (0, 1)")
        if dof_adjust not in ("structural", "slices"):
            raise ValueError("dof_adjust must be 'structural' or 'slices'")
        if encoded is not None and encoded.dataset is not dataset:
            raise ValueError("encoded layer must wrap the tester's dataset")
        self.dataset = dataset
        self.alpha = float(alpha)
        self.dof_adjust = dof_adjust
        self.compress_threshold = int(compress_threshold)
        self.batch_groups = bool(batch_groups)
        self.counters = CITestCounters()
        self.encoded = encoded if encoded is not None else EncodedDataset(dataset)
        self.arena = arena if arena is not None else KernelArena()
        # Memo of dense conditioning-code rows keyed by set tuple (the set
        # of distinct dense Z encodings a skeleton run touches is small —
        # a few hundred — while the test stream revisits them thousands of
        # times), plus a derived cache of *scaled* rows keyed
        # ``(set, rx * ry)``: storing ``z * scale`` lets a wave fill land
        # each row on its slab base with one constant add, so the kernel
        # never multiplies, and a scaled miss over a memoised set is one
        # vector multiply rather than a re-encode.  Like the EncodedDataset
        # memoization, this is pure allocation reuse: values are exactly
        # (``scale`` times) the codes a fresh encode would produce, and it
        # is deliberately not credited in the work counters.  Each tier is
        # FIFO-bounded to ~8 MiB.  The dicts live on the EncodedDataset
        # (when it memoizes) so warm rows are shared across testers over
        # the same data, exactly like ``xy_codes``; non-memoizing encoded
        # layers (baseline learners) get private throwaway dicts.
        if self.encoded.memoize:
            self._z_rows = self.encoded.z_rows
            self._z_scaled = self.encoded.z_scaled
        else:
            self._z_rows = {}
            self._z_scaled = {}
        self._z_rows_cap = max(64, (1 << 23) // (4 * max(dataset.n_samples, 1)))
        # Depth-0 stand-in for the wave fill's concatenate (uint8 widens
        # into any wave dtype without copies of its own).
        self._zero_row = np.zeros(dataset.n_samples, np.uint8)
        # Companion memo of per-set geometry ``s -> (rz, nz)`` (tiny
        # tuples; the planner touches it once per (group, set) pair).
        self._set_info: dict[tuple[int, ...], tuple[list[int], int]] = {}
        #: Per-instance native-path switch (A/B benchmarking, tests); the
        #: effective path is this AND the import-time backend detection.
        self.use_native = True
        # Plain-int arity list: the fused planner reads arities per set
        # per group, and numpy scalar unboxing would dominate it.
        self._arities = [dataset.arity(v) for v in range(dataset.n_variables)]
        self._builder = None
        if stats_cache is not None:
            from ..engine.statscache import CachedTableBuilder

            self._builder = CachedTableBuilder(
                dataset, stats_cache, compress_threshold=self.compress_threshold
            )

    # ------------------------------------------------------------------ #
    # statistic hooks (subclass responsibility)
    # ------------------------------------------------------------------ #
    def _stat_from_counts(self, counts: np.ndarray) -> tuple[float, int, int]:
        raise NotImplementedError

    def _elementwise(
        self, stack: np.ndarray, scratch: _Scratch | None = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        raise NotImplementedError

    def _finalize_stats(self, sums: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def test(self, x: int, y: int, s: Sequence[int]) -> CITestResult:
        """Single CI test ``I(x, y | s)``."""
        s = tuple(int(v) for v in s)
        # With a stats cache the builder resolves (and memoizes) the XY
        # encoding lazily — only on a table miss — so a warm path never
        # re-reads the endpoint columns.
        xy_codes = None if self._builder is not None else self.encoded.xy_codes(x, y)
        return self._test_single(x, y, s, xy_codes, xy_reused=False)

    def test_group(self, x: int, y: int, sets: Sequence[Sequence[int]]) -> list[CITestResult]:
        """Evaluate several conditioning sets sharing endpoints ``(x, y)``.

        The XY encoding is computed once and reused for every set in the
        group (the gs memory-reuse optimisation); under ``batch_groups``
        the whole group runs through the fused kernel (module docstring).
        """
        sets = [tuple(map(int, s)) for s in sets]
        if not self.batch_groups or len(sets) < 2:
            return self._test_group_looped(x, y, sets)
        try:
            return self._test_groups_fused([(x, y, sets)])[0]
        except BaseException:
            # Abort mid-group (interrupt, allocation failure, ...): drop
            # any reserved-but-unfilled cache slots so the shared cache is
            # not left with pending placeholders that later lookups would
            # trip over.
            if self._builder is not None:
                self._builder.discard_pending(x, y, sets)
            raise

    def test_groups(
        self, items: Sequence[tuple[int, int, Sequence[Sequence[int]]]]
    ) -> list[list[CITestResult]]:
        """Evaluate many endpoint groups through one fused kernel pass.

        ``items`` holds ``(x, y, sets)`` triples; the return value is one
        result list per item, each bit-identical to what per-item
        ``test_group`` calls (and therefore the looped oracle) would have
        produced — cross-group fusion changes kernel invocation counts,
        never values or cache/counter semantics.
        """
        # Normalise lazily: callers in the batched-learn hot path already
        # send plain-int endpoints and tuple sets, so re-tupling every set
        # of every group would cost more than the whole plan stage.
        items = [
            (
                x if type(x) is int else int(x),
                y if type(y) is int else int(y),
                [s if type(s) is tuple else tuple(map(int, s)) for s in sets],
            )
            for x, y, sets in items
        ]
        if not items:
            return []
        if not self.batch_groups:
            return [self._test_group_looped(x, y, sets) for x, y, sets in items]
        try:
            return self._test_groups_fused(items)
        except BaseException:
            if self._builder is not None:
                for x, y, sets in items:
                    self._builder.discard_pending(x, y, sets)
            raise

    # ------------------------------------------------------------------ #
    # looped path (reference oracle)
    # ------------------------------------------------------------------ #
    def _test_group_looped(
        self, x: int, y: int, sets: list[tuple[int, ...]]
    ) -> list[CITestResult]:
        xy_codes = None if self._builder is not None else self.encoded.xy_codes(x, y)
        return [
            self._test_single(x, y, s, xy_codes, xy_reused=i > 0) for i, s in enumerate(sets)
        ]

    def _test_single(
        self,
        x: int,
        y: int,
        s: tuple[int, ...],
        xy_codes: np.ndarray | None,
        xy_reused: bool,
        known_miss: bool = False,
    ) -> CITestResult:
        ds = self.dataset
        rx, ry = ds.arity(x), ds.arity(y)
        rz = [ds.arity(v) for v in s]

        from_cache: bool | None = None
        z_reused = False
        if self._builder is not None:
            counts, nz_structural, from_cache, z_reused, xy_cached = self._builder.ci_counts(
                x, y, s, xy_codes=xy_codes, known_miss=known_miss
            )
            xy_reused = xy_reused or xy_cached
        else:
            counts, nz_structural, _dense = ci_counts(
                ds.column(x),
                ds.column(y),
                ds.columns(s),
                rx,
                ry,
                rz,
                compress_threshold=self.compress_threshold,
                xy_codes=xy_codes,
            )
        return self._finish(
            x, y, s, counts, nz_structural, rx, ry, xy_reused, from_cache, z_reused
        )

    def _finish(
        self,
        x: int,
        y: int,
        s: tuple[int, ...],
        counts: np.ndarray,
        nz_structural: int,
        rx: int,
        ry: int,
        xy_reused: bool,
        from_cache: bool | None,
        z_reused: bool,
    ) -> CITestResult:
        """Statistic, decision and work accounting for one built table."""
        stat, n_logs, n_nonempty = self._stat_from_counts(counts)
        if self.dof_adjust == "structural":
            dof = (rx - 1) * (ry - 1) * float(nz_structural)
        else:
            dof = (rx - 1) * (ry - 1) * float(max(n_nonempty, 1))
        p = chi2_sf(stat, dof)
        self.counters.record(
            depth=len(s),
            m=self.dataset.n_samples,
            cells=counts.size,
            logs=n_logs,
            xy_reused=xy_reused,
            from_cache=from_cache,
            z_reused=z_reused,
        )
        return CITestResult(
            x=x, y=y, s=s, statistic=stat, dof=dof, p_value=p, independent=p > self.alpha
        )

    # ------------------------------------------------------------------ #
    # fused path (megagroup kernel)
    # ------------------------------------------------------------------ #
    def _test_groups_fused(
        self, items: list[tuple[int, int, list[tuple[int, ...]]]]
    ) -> list[list[CITestResult]]:
        m = self.dataset.n_samples
        ar = self._arities
        dense_limit = self.compress_threshold * max(m, 1)
        builder = self._builder
        set_info = self._set_info

        results: list[list[CITestResult | None]] = [
            [None] * len(sets) for _, _, sets in items
        ]
        group_xy: list[np.ndarray | None] = [None] * len(items)
        entries: list[_FusedEntry] = []
        hits: list[tuple[int, int, tuple]] = []
        dups: list[tuple[int, int, tuple]] = []
        margs: list[tuple[int, int, tuple]] = []
        # Table keys reserved by THIS call; a pending payload outside this
        # set is a stale placeholder from an aborted evaluation, which the
        # planner rebuilds over (the fresh reservation self-heals the slot).
        pending: set[tuple] = set()

        # Plan strictly in (group, set) order so every cache event — hits,
        # misses, encoding fetches, slot reservations, the compressed
        # fallback's builds — happens exactly where a looped pass over the
        # same stream would have produced it; recency, evictions and
        # counters stay bit-identical even across fused groups.
        # Work-counter deltas for the fused entries are plan-derivable
        # (depth, table size, reuse flags), so they are accumulated here —
        # one pass that already iterates every (group, set) — and flushed
        # once below; the totals are exactly the sum of the per-test
        # ``record`` calls the looped path makes (same flags, same
        # arithmetic).  Only ``log_ops`` needs built tables; the wave
        # builds flush it separately.
        cells_acc = cols_acc = n_fused = 0
        per_depth: dict[int, int] = {}
        gshape: list[tuple[int, int]] = [(0, 0)] * len(items)
        if builder is None:
            # Lean plan (no cache events to order): the common batched-learn
            # configuration runs this loop once per (group, set), so the
            # builder branches are hoisted out of it entirely.
            for g, (x, y, sets) in enumerate(items):
                ry = ar[y]
                sc = ar[x] * ry
                gshape[g] = (ar[x], ry)
                group_xy[g] = self.encoded.xy_codes(x, y)
                for i, s in enumerate(sets):
                    info = set_info.get(s)
                    if info is None:
                        rz = [ar[v] for v in s]
                        nz = n_configurations(rz)
                        set_info[s] = (rz, nz)
                    else:
                        rz, nz = info
                    if nz <= dense_limit:
                        entries.append(
                            _FusedEntry(g, i, s, rz, nz, nz * sc, None, False, False)
                        )
                        n_fused += 1
                        cells_acc += nz * sc
                        d = len(s)
                        cols_acc += d + (0 if i > 0 else 2)
                        per_depth[d] = per_depth.get(d, 0) + 1
                    else:
                        results[g][i] = self._test_single(
                            x, y, s, group_xy[g], xy_reused=i > 0, known_miss=False
                        )
        else:
            for g, (x, y, sets) in enumerate(items):
                ry = ar[y]
                sc = ar[x] * ry
                gshape[g] = (ar[x], ry)
                for i, s in enumerate(sets):
                    status, payload = builder.lookup(x, y, s)
                    if status == "hit":
                        hits.append((g, i, payload))  # type: ignore[arg-type]
                        continue
                    if status == "pending" and payload in pending:
                        dups.append((g, i, payload))  # type: ignore[arg-type]
                        continue
                    if status == "pending_marg" and payload in pending:
                        margs.append((g, i, payload))  # type: ignore[arg-type]
                        pending.add(builder.table_key(x, y, s))
                        continue
                    info = set_info.get(s)
                    if info is None:
                        rz = [ar[v] for v in s]
                        nz = n_configurations(rz)
                        set_info[s] = (rz, nz)
                    else:
                        rz, nz = info
                    if nz <= dense_limit:
                        # Looped miss-build event order at this position:
                        # conditioning codes, endpoint codes, table store
                        # (here: slot reservation).
                        zc, zf = builder.encoded_z(s, rz) if s else (None, False)
                        xy_fetched, xyf = builder.encoded_xy(x, y, ry)
                        if group_xy[g] is None:
                            group_xy[g] = xy_fetched
                        builder.reserve(x, y, s)
                        pending.add(builder.table_key(x, y, s))
                        entries.append(
                            _FusedEntry(g, i, s, rz, nz, nz * sc, zc, zf, xyf)
                        )
                        n_fused += 1
                        cells_acc += nz * sc
                        d = len(s)
                        cols_acc += (0 if zf else d) + (0 if (i > 0 or xyf) else 2)
                        per_depth[d] = per_depth.get(d, 0) + 1
                    else:
                        # Compressed-Z set: data-dependent table height,
                        # looped path (builds and stores immediately; the
                        # planning lookup above established the miss).
                        results[g][i] = self._test_single(
                            x,
                            y,
                            s,
                            None,
                            xy_reused=i > 0,
                            known_miss=True,
                        )

        built_by_key: dict[tuple, tuple[np.ndarray, int]] = {}
        if entries:
            counters = self.counters
            counters.n_tests += n_fused
            counters.data_accesses += m * cols_acc
            counters.table_cells += cells_acc
            if builder is not None:
                counters.cache_misses += n_fused
                builder.cache.misses += len(entries)
            pdt = counters.per_depth_tests
            for d, c in per_depth.items():
                pdt[d] = pdt.get(d, 0) + c
            if builder is None:
                # Shape-major entry order (stable, groups stay whole —
                # the shape is a per-group property): each wave then
                # carries only a couple of endpoint-shape slabs, cutting
                # per-slab elementwise dispatches, while group runs stay
                # contiguous for the broadcast endpoint adds.  Per-set
                # results and counters are order-independent; only the
                # cache builder's event stream pins plan order (above).
                # Bucketing is a cheaper stable (shape, group) sort — the
                # plan emits entries in group order, so per-bucket
                # insertion order is already group-major — and the wave
                # split happens in the same walk over the sorted buckets.
                buckets: dict[tuple[int, int], list[_FusedEntry]] = {}
                for e in entries:
                    shp = gshape[e.g]
                    lst = buckets.get(shp)
                    if lst is None:
                        buckets[shp] = [e]
                    else:
                        lst.append(e)
                max_rows = max(_MAX_WAVE_CODES // max(m, 1), 1)
                wave: list[_FusedEntry] = []
                cells = 0
                waves: list[list[_FusedEntry]] = []
                for shp in sorted(buckets):
                    for e in buckets[shp]:
                        if wave and (
                            cells + e.cells > _MAX_WAVE_CELLS
                            or len(wave) >= max_rows
                        ):
                            waves.append(wave)
                            wave, cells = [], 0
                        wave.append(e)
                        cells += e.cells
                if wave:
                    waves.append(wave)
            else:
                waves = self._split_waves(entries)
            for wave in waves:
                self._build_wave(wave, items, gshape, group_xy, results, built_by_key)

        if builder is not None:
            # Cross-group marginalization hits, in plan order (sources —
            # wave builds or earlier marginals — precede their consumers).
            for g, i, src_key in margs:
                x, y, sets = items[g]
                s = sets[i]
                counts, nz_structural = builder.marginal_from_key(
                    src_key, built_by_key[src_key][0], x, y, s
                )
                built_by_key[builder.table_key(x, y, s)] = (counts, nz_structural)
                results[g][i] = self._finish(
                    x, y, s, counts, nz_structural, ar[x], ar[y],
                    xy_reused=True, from_cache=True, z_reused=True,
                )

            # Every table this call produced lands in its reserved slot
            # (when still resident) under one lock acquisition.
            if built_by_key:
                builder.cache.fill_many(built_by_key.items())

            # Duplicates of in-flight builds: hit accounting happened at
            # planning (the reserved slot took the direct hit); serve.
            for g, i, src_key in dups:
                x, y, sets = items[g]
                counts, nz_structural = built_by_key[src_key]
                results[g][i] = self._finish(
                    x, y, sets[i], counts, nz_structural, ar[x], ar[y],
                    xy_reused=True, from_cache=True, z_reused=True,
                )

        for g, i, payload in hits:
            x, y, sets = items[g]
            counts, nz_structural = payload  # type: ignore[misc]
            results[g][i] = self._finish(
                x, y, sets[i], counts, nz_structural, ar[x], ar[y],
                xy_reused=True, from_cache=True, z_reused=True,
            )

        return results  # type: ignore[return-value]

    def _split_waves(self, entries: list[_FusedEntry]) -> list[list[_FusedEntry]]:
        """Greedy plan-order split under the wave caps (module constant).

        A single oversized entry still gets a (one-entry) wave — the caps
        bound steady-state arena footprint, they are not admission control.
        """
        m = max(self.dataset.n_samples, 1)
        max_rows = max(_MAX_WAVE_CODES // m, 1)
        waves: list[list[_FusedEntry]] = []
        wave: list[_FusedEntry] = []
        cells = 0
        for e in entries:
            if wave and (cells + e.cells > _MAX_WAVE_CELLS or len(wave) >= max_rows):
                waves.append(wave)
                wave, cells = [], 0
            wave.append(e)
            cells += e.cells
        if wave:
            waves.append(wave)
        return waves

    def _build_wave(
        self,
        wave: list[_FusedEntry],
        items: list[tuple[int, int, list[tuple[int, ...]]]],
        gshape: list[tuple[int, int]],
        group_xy: list[np.ndarray | None],
        results: list[list[CITestResult | None]],
        built_by_key: dict[tuple, tuple[np.ndarray, int]],
    ) -> None:
        """Fused build + statistics for one wave of dense entries.

        Rows keep the planner's (group, set) order — group runs stay
        contiguous, so the endpoint codes enter the cell matrix as one
        broadcast add per run instead of an ``n x m`` gather.  The
        histogram layout is row-order independent (each row carries its
        own offset).
        """
        m = self.dataset.n_samples
        builder = self._builder
        arena = self.arena
        n = len(wave)

        # -- global histogram layout ------------------------------------- #
        # Offsets are assigned in (rx, ry, nz)-sorted order: all tables
        # sharing an endpoint-shape (rx, ry) become one contiguous slab of
        # z-slices (the statistic terms are per-z-slice computations, so
        # one elementwise dispatch covers the whole slab regardless of the
        # nz mix), and within a slab equal-nz runs are contiguous (the
        # per-set term sums reduce uniform same-length rows, which keeps
        # them bit-identical to the looped per-table sums).
        exy = [gshape[e.g] for e in wave]
        shape_order = [(exy[w][0], exy[w][1], e.nz, w) for w, e in enumerate(wave)]
        shape_order.sort()
        scales_l = [0] * n
        total = 0
        for rx, ry, nz, w in shape_order:
            sc = rx * ry
            scales_l[w] = sc
            wave[w].offset = total
            total += nz * sc
        native_ok = self.use_native and native_available()
        cell_dt = _cell_dtype(total, narrow=not native_ok)

        # -- conditioning codes (scaled, offset) into the cell matrix ----- #
        # Row w is filled with ``z_codes * scale + offset`` directly: the
        # z-row memo stores *scaled* rows keyed ``(set, scale)``, so a wave
        # fill is one ``concatenate`` of memo rows (a C memcpy/cast loop —
        # no per-row ufunc dispatch) plus one broadcast add that lands
        # every row on its slab base.  Integer arithmetic bounded by
        # ``total``, so exact in ``cell_dt`` (and the concatenate casts —
        # narrow memo row into the wave dtype — are value-preserving
        # widenings).
        z2d = arena.take("cells", (n, m), cell_dt)
        od_all = np.fromiter((e.offset for e in wave), cell_dt, n)
        if builder is not None:
            # Cache path: codes were fetched through the builder in plan
            # order; scale/offset them row by row.  ``od_all[w : w + 1]``
            # keeps the adds dtype-stable (a 1-element array never
            # triggers value-based scalar promotion into a narrow,
            # overflowing intermediate).
            sc_all = np.fromiter(scales_l, cell_dt, n)
            for w, e in enumerate(wave):
                if not e.s:
                    z2d[w] = od_all[w]  # depth-0: the cell code is xy + offset
                    continue
                np.multiply(e.z1d, sc_all[w : w + 1], out=z2d[w], casting="unsafe")
                np.add(z2d[w], od_all[w : w + 1], out=z2d[w], casting="unsafe")
        else:
            zmemo = self._z_rows
            zscaled = self._z_scaled
            cap = self._z_rows_cap
            zero_row = self._zero_row
            rows: list[np.ndarray] = []
            miss: list[int] = []
            first_at: dict[tuple[int, ...], int] = {}
            for w, e in enumerate(wave):
                if not e.s:
                    rows.append(zero_row)  # depth-0: cell code is xy + offset
                    continue
                sc = scales_l[w]
                key = (e.s, sc)
                row = zscaled.get(key)
                if row is None:
                    base = zmemo.get(e.s)
                    if base is None:
                        first_at.setdefault(e.s, w)
                        miss.append(w)
                        rows.append(zero_row)  # placeholder, rewritten below
                        continue
                    lim = e.nz * sc
                    if lim <= _INT32_LIMIT:
                        row = base * np.int32(sc)
                        if lim <= _UINT16_LIMIT:
                            # Narrow storage halves the memo-read traffic
                            # of every later fill; the values are unchanged.
                            row = row.astype(
                                np.uint8 if lim <= _UINT8_LIMIT else np.uint16
                            )
                        if len(zscaled) >= cap:
                            zscaled.pop(next(iter(zscaled)))
                        zscaled[key] = row
                    else:  # pragma: no cover - needs a >2^31-cell single table
                        row = base.astype(np.int64) * sc
                rows.append(row)
            np.concatenate(rows, out=z2d.reshape(-1))
            z2d += od_all[:, None]
            if miss:
                self._encode_missing(wave, miss, first_at, z2d, od_all, scales_l)

        # -- endpoint codes + per-row geometry ---------------------------- #
        runs: list[tuple[int, int, int]] = []
        b = 0
        while b < n:
            g = wave[b].g
            c = b + 1
            while c < n and wave[c].g == g:
                c += 1
            runs.append((b, c, g))
            b = c
        native_ok = self.use_native and native_available()
        if native_ok:
            # The native kernel wants the gather form: a stacked endpoint
            # matrix plus a per-row group index.
            gpos: dict[int, int] = {}
            for _, _, g in runs:
                if g not in gpos:
                    gpos[g] = len(gpos)
            xy_mat = arena.take("xymat", (len(gpos), m), cell_dt)
            for g, k in gpos.items():
                np.copyto(xy_mat[k], group_xy[g], casting="unsafe")
            row_group = np.fromiter((gpos[e.g] for e in wave), np.int64, n)
            gather_out = arena.take("xygather", (n, m), cell_dt)
        else:
            xy_mat = row_group = gather_out = None

        counts = fused_cell_counts(
            z2d,
            xy_mat,
            row_group,
            None,
            None,
            total,
            gather_out=gather_out,
            use_native=native_ok,
            # Raw (int64) endpoint rows: the widening add into ``add_out``
            # replaces both a per-run narrowing cast and bincount's hidden
            # intp conversion copy.
            xy_runs=[(b, c, group_xy[g]) for b, c, g in runs],
            add_out=None if native_ok else arena.take("codes", (n, m), np.intp),
        )

        # -- statistics: one elementwise pass per endpoint shape ---------- #
        # The terms/marginals of G^2 and X^2 are per-z-slice computations,
        # so the whole (rx, ry) slab — every set sharing that endpoint
        # shape, any nz mix — goes through ``_elementwise`` as one stacked
        # (z_total, rx, ry) array: per-cell values are unchanged by the
        # stacking, and the axis reductions stay within single z-slices.
        # Only the per-set aggregations below need exact spans.
        all_stats = np.empty(n, dtype=np.float64)
        all_dofs = np.empty(n, dtype=np.float64)
        all_logs = np.zeros(n, dtype=np.int64)
        order_arr = np.fromiter((t[3] for t in shape_order), np.intp, n)
        nz_arr = np.fromiter((t[2] for t in shape_order), np.intp, n)
        scratch = _Scratch(arena)
        structural = self.dof_adjust == "structural"
        i = 0
        while i < n:
            rx, ry = shape_order[i][:2]
            j = i
            z_total = 0
            while j < n and shape_order[j][0] == rx and shape_order[j][1] == ry:
                z_total += shape_order[j][2]
                j += 1
            pos = wave[shape_order[i][3]].offset  # slab base (padding-aware)
            slab = counts[pos : pos + z_total * rx * ry].reshape(z_total, rx, ry)
            terms, mask, n_z = self._elementwise(slab, scratch)
            terms_flat = terms.reshape(-1)
            mask_flat = mask.reshape(-1)
            # Log billing: integer cell counts are order-independent, so
            # one segmented reduction per slab bills every set exactly as
            # the looped path's per-table ``count_nonzero`` would.
            spans = nz_arr[i:j] * (rx * ry)
            starts = np.zeros(j - i, dtype=np.intp)
            np.cumsum(spans[:-1], out=starts[1:])
            all_logs[order_arr[i:j]] = np.add.reduceat(
                mask_flat, starts, dtype=np.int64
            )
            # Equal-nz runs inside the slab: uniform (count, span) rows.
            # Every row is one set's full unpadded table — the same
            # contiguous value sequence the looped path reduces, so the
            # pairwise float sums are bit-identical per set.
            k, cell0, z0 = i, 0, 0
            while k < j:
                nz = shape_order[k][2]
                m_run = k
                while m_run < j and shape_order[m_run][2] == nz:
                    m_run += 1
                cnt = m_run - k
                span = nz * rx * ry
                block = terms_flat[cell0 : cell0 + cnt * span].reshape(cnt, span)
                idx = order_arr[k:m_run]
                all_stats[idx] = block.sum(axis=1)
                if structural:
                    all_dofs[idx] = (rx - 1) * (ry - 1) * float(nz)
                else:
                    nz_rows = n_z.reshape(-1)[z0 : z0 + cnt * nz].reshape(cnt, nz)
                    n_nonempty = np.count_nonzero(nz_rows > 0, axis=1)
                    all_dofs[idx] = (
                        (rx - 1) * (ry - 1) * np.maximum(n_nonempty, 1).astype(np.float64)
                    )
                cell0 += cnt * span
                z0 += cnt * nz
                k = m_run
            i = j

        # Finalisation (scale/clamp) is elementwise, so one whole-wave call
        # equals the per-run calls the run loop used to make.
        all_stats = self._finalize_stats(all_stats)
        ps = chi2_sf_array(all_stats, all_dofs)

        # -- results + cache copies --------------------------------------- #
        # Every other counter delta was accumulated at plan time (they are
        # plan-derivable); only the log billing needs the built tables.
        stats_l, dofs_l, ps_l = all_stats.tolist(), all_dofs.tolist(), ps.tolist()
        # ``p > alpha`` vectorised over float64 is the same comparison the
        # looped path makes per test.
        ind_l = (ps > self.alpha).tolist()
        cached = builder is not None
        for b, c, g in runs:
            x, y, _sets = items[g]
            res_g = results[g]
            sub = wave[b:c]
            recs = map(
                CITestResult,
                repeat(x),
                repeat(y),
                (e.s for e in sub),
                stats_l[b:c],
                dofs_l[b:c],
                ps_l[b:c],
                ind_l[b:c],
            )
            if not cached:
                for e, r in zip(sub, recs, strict=True):
                    res_g[e.i] = r
                continue
            for w, r in zip(range(b, c), recs, strict=True):
                e = wave[w]
                res_g[e.i] = r
                # Materialise a standalone copy: a contiguous *view* would
                # pin the whole wave histogram in the byte-budgeted cache
                # while billing only the slice.
                rx, ry = exy[w]
                span = e.nz * rx * ry
                table = (
                    counts[e.offset : e.offset + span].reshape(e.nz, rx, ry).copy()
                )
                built_by_key[builder.table_key(x, y, e.s)] = (table, e.nz)
        self.counters.log_ops += int(all_logs.sum())

    def _encode_missing(
        self,
        wave: list[_FusedEntry],
        miss: list[int],
        first_at: dict[tuple[int, ...], int],
        z2d: np.ndarray,
        od_all: np.ndarray,
        scales_l: list[int],
    ) -> None:
        """Encode the wave's memo-missing conditioning sets, then fill rows.

        Each *distinct* missing set is mixed-radix encoded once (vectorized
        per depth block over the narrow column matrix), scaled per distinct
        ``(set, scale)`` pair, memoised as an ``int32`` row, and every
        missing row — first occurrence or in-wave duplicate — is then
        served from the scaled row with its offset added, exactly like a
        memo hit.
        """
        cols = self.encoded.cols_matrix()
        m = cols.shape[1]
        arena = self.arena
        distinct = sorted(first_at.values(), key=lambda w: len(wave[w].s))
        k = len(distinct)
        zenc = arena.take("zenc", (k, m), np.int32)
        b = 0
        while b < k:
            d = len(wave[distinct[b]].s)
            c = b
            while c < k and len(wave[distinct[c]].s) == d:
                c += 1
            rows = [wave[w] for w in distinct[b:c]]
            block = zenc[b:c]
            gather = arena.take("gather", (c - b, m), cols.dtype)
            np.take(
                cols,
                np.fromiter((e.s[0] for e in rows), np.intp, c - b),
                axis=0,
                out=gather,
            )
            np.copyto(block, gather, casting="unsafe")
            for j in range(1, d):
                radix = np.fromiter((e.rz[j] for e in rows), np.int32, c - b)
                block *= radix[:, None]
                np.take(
                    cols,
                    np.fromiter((e.s[j] for e in rows), np.intp, c - b),
                    axis=0,
                    out=gather,
                )
                np.add(block, gather, out=block, casting="unsafe")
            b = c
        spos = {wave[w].s: pos for pos, w in enumerate(distinct)}
        made: dict[tuple[tuple[int, ...], int], np.ndarray] = {}
        for w in miss:
            e = wave[w]
            sc = scales_l[w]
            key = (e.s, sc)
            row = made.get(key)
            if row is None:
                lim = e.nz * sc
                if lim <= _INT32_LIMIT:
                    # The scaled copy doubles as the scaled-cache row below.
                    row = zenc[spos[e.s]] * np.int32(sc)
                    if lim <= _UINT16_LIMIT:
                        row = row.astype(
                            np.uint8 if lim <= _UINT8_LIMIT else np.uint16
                        )
                    made[key] = row
                else:  # pragma: no cover - needs a >2^31-cell single table
                    row = zenc[spos[e.s]].astype(np.int64) * sc
            np.add(row, od_all[w : w + 1], out=z2d[w], casting="unsafe")
        zmemo = self._z_rows
        zscaled = self._z_scaled
        cap = self._z_rows_cap
        for s, pos in spos.items():
            if len(zmemo) >= cap:
                zmemo.pop(next(iter(zmemo)))
            zmemo[s] = zenc[pos].copy()
        for key, row in made.items():
            if len(zscaled) >= cap:
                zscaled.pop(next(iter(zscaled)))
            zscaled[key] = row
