"""Shared machinery of the contingency-table CI testers.

:class:`GSquareTest <repro.citests.gsquare.GSquareTest>` and
:class:`ChiSquareTest <repro.citests.chisquare.ChiSquareTest>` differ only
in the statistic computed from the ``(nz, rx, ry)`` table; everything else
— encodings, table construction, the stats-cache front door, work-counter
accounting, dof/p-value plumbing and the group-evaluation strategy — lives
here once.

Two group-evaluation paths, bit-identical by construction and by test:

* **looped** (``batch_groups=False``): one :func:`ci_counts` and one
  statistic reduction per conditioning set — the seed behaviour, kept as
  the reference oracle for the batched kernel;
* **batched** (default): all dense sets of a group are built by one
  offset-stacked ``np.bincount``
  (:func:`~repro.citests.contingency.group_ci_counts`) and their
  statistics, dofs and p-values are computed over the stacked
  ``(n_sets, nz, rx, ry)`` array in vectorized reductions with a single
  ``gammaincc`` call for the whole group.  Compressed-Z sets (structural
  ``nz`` beyond ``compress_threshold * m``) fall back to the looped path.
  With a stats cache attached, planning walks the sets in order resolving
  hits and *reserving* exact-size slots for the misses (so LRU recency,
  evictions and hit/miss counters replay the looped event sequence
  bit-for-bit, including in-group duplicate and subset-marginalization
  hits against not-yet-built tables), then the whole batch builds at once
  and fills its surviving slots under a single lock acquisition.

Work-counter accounting is identical in both paths: per test, the same
``data_accesses``/``table_cells``/``log_ops`` record the looped path would
make (group-position XY reuse, stats-cache hit/miss/encoding flags).  The
:class:`~repro.datasets.encoded.EncodedDataset` memoization layer is
deliberately *not* credited — see its module docstring.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy.special import gammaincc

from ..datasets.dataset import DiscreteDataset
from ..datasets.encoded import EncodedDataset
from .base import CITestCounters, CITestResult
from .contingency import ci_counts, group_ci_counts, n_configurations

__all__ = ["ContingencyTableTest", "chi2_sf", "chi2_sf_array"]


def chi2_sf(stat: float, dof: float) -> float:
    """Chi-squared survival function without ``scipy.stats`` dispatch."""
    if dof <= 0:
        return 1.0
    return float(gammaincc(dof / 2.0, stat / 2.0))


def chi2_sf_array(stats: np.ndarray, dofs: np.ndarray) -> np.ndarray:
    """Vectorized :func:`chi2_sf` — one ``gammaincc`` call per group.

    Elementwise identical to the scalar form (same ufunc, applied to the
    same float64 values).
    """
    halved = np.asarray(stats, dtype=np.float64) / 2.0
    positive = dofs > 0
    if positive.all():
        return gammaincc(dofs / 2.0, halved)
    safe = np.where(positive, dofs, 1.0)
    return np.where(positive, gammaincc(safe / 2.0, halved), 1.0)


class ContingencyTableTest:
    """Base of the table-driven CI testers (see module docstring).

    Subclasses provide the statistic:

    * ``_stat_from_counts(counts) -> (stat, n_logs, n_nonempty)`` — looped
      single-table path;
    * ``_elementwise(stack) -> (terms, mask, n_z)`` — per-cell statistic
      terms of a ``(..., nz, rx, ry)`` stack (``terms`` sums to the
      pre-scaling statistic over cells, ``mask`` marks the cells billed as
      log/flop work, ``n_z`` are the per-slice totals);
    * ``_finalize_stats(sums) -> stats`` — scale/clamp the per-set term
      sums into the statistic (e.g. ``max(2 * s, 0)`` for G^2).

    Parameters
    ----------
    dataset:
        The observations (either storage layout).
    alpha:
        Significance level; p > alpha accepts independence.
    dof_adjust:
        ``"structural"`` (classical, the paper's definition) or ``"slices"``
        (count only non-empty Z slices).
    compress_threshold:
        Compress Z codes through ``np.unique`` when the structural
        configuration count exceeds ``compress_threshold * n_samples``;
        bounds memory at any depth (and bounds what the batched kernel
        will stack).
    stats_cache:
        Optional :class:`~repro.engine.statscache.SufficientStatsCache`;
        tables are then pulled through the cache (memoized by variable
        tuple, served by exact marginalization when a cached dense superset
        exists).  Results are bit-identical either way.
    encoded:
        Optional shared :class:`~repro.datasets.encoded.EncodedDataset`
        over the *same* dataset; by default the tester keeps a private one.
    batch_groups:
        ``True`` (default) routes ``test_group`` through the batched group
        kernel; ``False`` keeps the looped per-set reference path.
    """

    def __init__(
        self,
        dataset: DiscreteDataset,
        alpha: float = 0.05,
        dof_adjust: str = "structural",
        compress_threshold: int = 4,
        stats_cache=None,
        encoded: EncodedDataset | None = None,
        batch_groups: bool = True,
    ) -> None:
        if not 0 < alpha < 1:
            raise ValueError("alpha must be in (0, 1)")
        if dof_adjust not in ("structural", "slices"):
            raise ValueError("dof_adjust must be 'structural' or 'slices'")
        if encoded is not None and encoded.dataset is not dataset:
            raise ValueError("encoded layer must wrap the tester's dataset")
        self.dataset = dataset
        self.alpha = float(alpha)
        self.dof_adjust = dof_adjust
        self.compress_threshold = int(compress_threshold)
        self.batch_groups = bool(batch_groups)
        self.counters = CITestCounters()
        self.encoded = encoded if encoded is not None else EncodedDataset(dataset)
        # Plain-int arity list: the batched planner reads arities per set
        # per group, and numpy scalar unboxing would dominate it.
        self._arities = [dataset.arity(v) for v in range(dataset.n_variables)]
        self._builder = None
        if stats_cache is not None:
            from ..engine.statscache import CachedTableBuilder

            self._builder = CachedTableBuilder(
                dataset, stats_cache, compress_threshold=self.compress_threshold
            )

    # ------------------------------------------------------------------ #
    # statistic hooks (subclass responsibility)
    # ------------------------------------------------------------------ #
    def _stat_from_counts(self, counts: np.ndarray) -> tuple[float, int, int]:
        raise NotImplementedError

    def _elementwise(
        self, stack: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        raise NotImplementedError

    def _finalize_stats(self, sums: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def test(self, x: int, y: int, s: Sequence[int]) -> CITestResult:
        """Single CI test ``I(x, y | s)``."""
        s = tuple(int(v) for v in s)
        # With a stats cache the builder resolves (and memoizes) the XY
        # encoding lazily — only on a table miss — so a warm path never
        # re-reads the endpoint columns.
        xy_codes = None if self._builder is not None else self.encoded.xy_codes(x, y)
        return self._test_single(x, y, s, xy_codes, xy_reused=False)

    def test_group(self, x: int, y: int, sets: Sequence[Sequence[int]]) -> list[CITestResult]:
        """Evaluate several conditioning sets sharing endpoints ``(x, y)``.

        The XY encoding is computed once and reused for every set in the
        group (the gs memory-reuse optimisation); under ``batch_groups``
        the whole group additionally runs through the offset-stacked
        kernel (module docstring).
        """
        sets = [tuple(map(int, s)) for s in sets]
        if not self.batch_groups or len(sets) < 2:
            return self._test_group_looped(x, y, sets)
        try:
            return self._test_group_batched(x, y, sets)
        except BaseException:
            # Abort mid-group (interrupt, allocation failure, ...): drop
            # any reserved-but-unfilled cache slots so the shared cache is
            # not left with pending placeholders that later lookups would
            # trip over.
            if self._builder is not None:
                self._builder.discard_pending(x, y, sets)
            raise

    # ------------------------------------------------------------------ #
    # looped path (reference oracle)
    # ------------------------------------------------------------------ #
    def _test_group_looped(
        self, x: int, y: int, sets: list[tuple[int, ...]]
    ) -> list[CITestResult]:
        xy_codes = None if self._builder is not None else self.encoded.xy_codes(x, y)
        return [
            self._test_single(x, y, s, xy_codes, xy_reused=i > 0) for i, s in enumerate(sets)
        ]

    def _test_single(
        self,
        x: int,
        y: int,
        s: tuple[int, ...],
        xy_codes: np.ndarray | None,
        xy_reused: bool,
        known_miss: bool = False,
    ) -> CITestResult:
        ds = self.dataset
        rx, ry = ds.arity(x), ds.arity(y)
        rz = [ds.arity(v) for v in s]

        from_cache: bool | None = None
        z_reused = False
        if self._builder is not None:
            counts, nz_structural, from_cache, z_reused, xy_cached = self._builder.ci_counts(
                x, y, s, xy_codes=xy_codes, known_miss=known_miss
            )
            xy_reused = xy_reused or xy_cached
        else:
            counts, nz_structural, _dense = ci_counts(
                ds.column(x),
                ds.column(y),
                ds.columns(s),
                rx,
                ry,
                rz,
                compress_threshold=self.compress_threshold,
                xy_codes=xy_codes,
            )
        return self._finish(
            x, y, s, counts, nz_structural, rx, ry, xy_reused, from_cache, z_reused
        )

    def _finish(
        self,
        x: int,
        y: int,
        s: tuple[int, ...],
        counts: np.ndarray,
        nz_structural: int,
        rx: int,
        ry: int,
        xy_reused: bool,
        from_cache: bool | None,
        z_reused: bool,
    ) -> CITestResult:
        """Statistic, decision and work accounting for one built table."""
        stat, n_logs, n_nonempty = self._stat_from_counts(counts)
        if self.dof_adjust == "structural":
            dof = (rx - 1) * (ry - 1) * float(nz_structural)
        else:
            dof = (rx - 1) * (ry - 1) * float(max(n_nonempty, 1))
        p = chi2_sf(stat, dof)
        self.counters.record(
            depth=len(s),
            m=self.dataset.n_samples,
            cells=counts.size,
            logs=n_logs,
            xy_reused=xy_reused,
            from_cache=from_cache,
            z_reused=z_reused,
        )
        return CITestResult(
            x=x, y=y, s=s, statistic=stat, dof=dof, p_value=p, independent=p > self.alpha
        )

    # ------------------------------------------------------------------ #
    # batched path (offset-stacked kernel)
    # ------------------------------------------------------------------ #
    def _test_group_batched(
        self, x: int, y: int, sets: list[tuple[int, ...]]
    ) -> list[CITestResult]:
        ds = self.dataset
        m = ds.n_samples
        ar = self._arities
        rx, ry = ar[x], ar[y]
        dense_limit = self.compress_threshold * max(m, 1)
        rzs = [[ar[v] for v in s] for s in sets]
        nzs = [n_configurations(rz) for rz in rzs]

        n = len(sets)
        results: list[CITestResult | None] = [None] * n
        builder = self._builder
        batch: list[int] = []
        hits: dict[int, tuple[np.ndarray, int]] = {}
        dup_of: dict[int, int] = {}
        marg_of: dict[int, int] = {}
        # Batched misses reserve their cache slots during planning (exact
        # looped-order LRU events); pending_idx maps a reserved set to the
        # index whose built table will serve it.
        pending_idx: dict[tuple[int, ...], int] = {}
        z_codes: list[np.ndarray | None] = []  # per batch entry (builder path)
        z_flags: dict[int, bool] = {}
        xy_flags: dict[int, bool] = {}

        xy_codes: np.ndarray | None = None
        if builder is None:
            xy_codes = self.encoded.xy_codes(x, y)

        # Plan in set order so every cache event — hits, misses, encoding
        # fetches, slot reservations, the compressed fallback's builds —
        # happens exactly where the looped path would have produced it;
        # recency, evictions and counters stay bit-identical.
        for i, s in enumerate(sets):
            if builder is not None:
                status, payload = builder.lookup(x, y, s)
                if status == "hit":
                    hits[i] = payload  # type: ignore[assignment]
                    continue
                if status in ("pending", "pending_marg"):
                    # `payload` names the reserved set serving this one; an
                    # absent mapping means a stale placeholder from an
                    # aborted group — fall through and rebuild (the fresh
                    # reservation below self-heals the slot).
                    src = pending_idx.get(payload)  # type: ignore[arg-type]
                    if src is not None:
                        if status == "pending":
                            dup_of[i] = src
                        else:
                            marg_of[i] = src
                            pending_idx[s] = i
                        continue
            if nzs[i] <= dense_limit:
                if builder is not None:
                    # Looped miss-build event order at this position:
                    # conditioning codes, endpoint codes, table store
                    # (here: slot reservation).
                    if s:
                        zc, z_flags[i] = builder.encoded_z(s, rzs[i])
                    else:
                        zc, z_flags[i] = None, False
                    z_codes.append(zc)
                    xy_fetched, xy_flags[i] = builder.encoded_xy(x, y, ry)
                    if xy_codes is None:
                        xy_codes = xy_fetched
                    builder.reserve(x, y, s)
                    pending_idx[s] = i
                batch.append(i)
            else:
                # Compressed-Z set: data-dependent table height, looped
                # path (builds and stores immediately; the planning lookup
                # above already established the miss).
                results[i] = self._test_single(
                    x,
                    y,
                    s,
                    None if builder is not None else xy_codes,
                    xy_reused=i > 0,
                    known_miss=builder is not None,
                )

        built: dict[int, tuple[np.ndarray, int]] = {}
        if batch:
            if builder is not None:
                builder.cache.misses += len(batch)
            else:
                z_flags = dict.fromkeys(batch, False)
                depths = {len(sets[i]) for i in batch}
                if depths != {0} and len(depths) == 1:
                    # Uniform-depth group (the skeleton engine's shape):
                    # vectorized level-by-level radix combine for all sets.
                    z_codes = self.encoded.encode_z_group(  # type: ignore[assignment]
                        [sets[i] for i in batch], [rzs[i] for i in batch]
                    )
                else:
                    z_codes = []
                    for i in batch:
                        s = sets[i]
                        if not s:
                            z_codes.append(None)
                        elif len(s) == 1:
                            # Depth-1 codes are the widened column itself.
                            z_codes.append(self.encoded.col64(s[0]))
                        else:
                            zc, _ = self.encoded.encode_z(s, rzs[i])
                            z_codes.append(zc)

            nz_batch = [nzs[i] for i in batch]
            stack = group_ci_counts(xy_codes, z_codes, nz_batch, rx, ry)
            stats, n_logs, n_nonempty = self._stats_from_stack(stack, nz_batch)
            if self.dof_adjust == "structural":
                dofs = (rx - 1) * (ry - 1) * np.asarray(nz_batch, dtype=np.float64)
            else:
                dofs = (rx - 1) * (ry - 1) * np.maximum(n_nonempty, 1).astype(np.float64)
            ps = chi2_sf_array(stats, dofs)

            if builder is not None:
                for k, i in enumerate(batch):
                    # Materialise a standalone copy: a contiguous *view*
                    # would pin the whole group stack in the byte-budgeted
                    # cache while billing only the slice.
                    built[i] = (stack[k, : nz_batch[k]].copy(), nzs[i])

            stats_l, dofs_l, ps_l = stats.tolist(), dofs.tolist(), ps.tolist()
            logs_l = n_logs.tolist()
            for k, i in enumerate(batch):
                p = ps_l[k]
                results[i] = CITestResult(
                    x=x,
                    y=y,
                    s=sets[i],
                    statistic=stats_l[k],
                    dof=dofs_l[k],
                    p_value=p,
                    independent=p > self.alpha,
                )
                self.counters.record(
                    depth=len(sets[i]),
                    m=m,
                    cells=nzs[i] * rx * ry,
                    logs=logs_l[k],
                    xy_reused=(i > 0) or xy_flags.get(i, False),
                    from_cache=False if builder is not None else None,
                    z_reused=z_flags[i],
                )

        if builder is not None:
            # In-group marginalization hits, in set order (sources — batch
            # builds or earlier marginals — are already in `built`).
            for i in sorted(marg_of):
                counts, nz_structural = builder.compute_marginal(
                    x, y, sets[marg_of[i]], built[marg_of[i]][0], sets[i]
                )
                built[i] = (counts, nz_structural)
                results[i] = self._finish(
                    x, y, sets[i], counts, nz_structural, rx, ry,
                    xy_reused=True, from_cache=True, z_reused=True,
                )

            # Every table this group produced lands in its reserved slot
            # (when still resident) under one lock acquisition.
            if built:
                builder.cache.fill_many(
                    (builder.table_key(x, y, sets[i]), built[i]) for i in built
                )

            # Intra-group duplicates: hit accounting happened at planning
            # (the reserved slot took the direct hit); serve the table.
            for j, i in dup_of.items():
                counts, nz_structural = built[i]
                results[j] = self._finish(
                    x, y, sets[j], counts, nz_structural, rx, ry,
                    xy_reused=True, from_cache=True, z_reused=True,
                )

        for i, found in hits.items():
            counts, nz_structural = found
            results[i] = self._finish(
                x, y, sets[i], counts, nz_structural, rx, ry,
                xy_reused=True, from_cache=True, z_reused=True,
            )

        return results  # type: ignore[return-value]

    def _stats_from_stack(
        self, stack: np.ndarray, nz_per_set: list[int]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-set ``(stats, n_logs, n_nonempty)`` over a padded stack.

        Reductions run over each set's *unpadded* ``nz * rx * ry`` slice —
        the same contiguous value sequence the looped path reduces — so
        the per-set statistics are bit-identical to per-table evaluation.
        """
        terms, mask, n_z = self._elementwise(stack)
        n, nz_max = stack.shape[0], stack.shape[1]
        # Padding rows are all-zero counts, so mask is False and n_z is 0
        # there: the integer counts are exact over the padded rows.
        n_logs = np.count_nonzero(mask.reshape(n, -1), axis=1)
        n_nonempty = np.count_nonzero(n_z > 0, axis=1)
        if all(nz == nz_max for nz in nz_per_set):
            sums = terms.reshape(n, -1).sum(axis=1)
        else:
            # Float sums must run over each set's unpadded slice: summing
            # the zero padding too would regroup the pairwise reduction
            # and could drift from the looped result in the last ulp.
            sums = np.array([terms[k, : nz_per_set[k]].sum() for k in range(n)])
        return self._finalize_stats(sums), n_logs, n_nonempty
