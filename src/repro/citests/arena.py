"""Reusable kernel buffer pool (the per-worker *arena*).

The fused group kernel (:mod:`repro.citests.tablebase`) touches a handful
of large scratch arrays per megagroup build: the stacked cell codes, the
narrow column-gather buffer, the endpoint-code matrix, and the float64
statistic scratch of the elementwise reductions.  Allocating them per call
dominates small-group workloads (every ``np.empty`` of ``gs * m`` cells is
a page-faulting malloc at typical sample counts) and defeats the cache
locality the kernel exists to exploit.

:class:`KernelArena` keeps one geometrically grown buffer per ``(key,
dtype)`` slot and hands out leading views:

* ``take(key, shape, dtype)`` returns a C-contiguous view of exactly
  ``prod(shape)`` elements; the backing buffer only ever grows (doubling,
  so amortised O(1) growth events) and is reused by every later take of
  the slot — in steady state a worker performs **zero large allocations**
  per group evaluation, which ``benchmarks/bench_kernel_batching.py``
  measures with ``tracemalloc`` rather than asserting by prose;
* ``prewarm(hint)`` pre-sizes slots from the adaptive scheduler's live
  bucket mix (:meth:`repro.parallel.adaptive.AdaptiveGroupScheduler.
  arena_hint`), so the first groups of a round do not pay the growth
  ramp;
* pickling severs the buffers (like the stats-cache spill tier severs its
  SQLite connection): an arena that rides a tester/pool into a worker
  process arrives empty and regrows locally — buffers are pure scratch,
  so this changes warm-up, never results.

The arena is **not** thread-safe by design: each worker (process worker,
worker thread, or sequential tester) owns a private instance, exactly like
each owns a private tester.  Views handed out by ``take`` are only valid
until the next ``take`` of the same slot — the fused engine consumes every
view before requesting the slot again.
"""

from __future__ import annotations

import numpy as np

__all__ = ["KernelArena"]

#: Smallest buffer ever allocated (elements) — avoids pathological growth
#: chains for tiny groups.
_MIN_ELEMS = 1024


class KernelArena:
    """Keyed pool of grow-only scratch buffers (module docstring)."""

    def __init__(self) -> None:
        self._buffers: dict[tuple[str, str], np.ndarray] = {}
        self.n_takes = 0
        self.n_grows = 0

    # ------------------------------------------------------------------ #
    # core API
    # ------------------------------------------------------------------ #
    def take(self, key: str, shape: tuple[int, ...], dtype) -> np.ndarray:
        """A C-contiguous ``shape`` view over the slot's backing buffer.

        Contents are **unspecified** (stale data from earlier takes): the
        caller must overwrite every element it reads back.  The view is
        invalidated by the next ``take``/``prewarm`` of the same slot.
        """
        dt = np.dtype(dtype)
        size = 1
        for dim in shape:
            size *= int(dim)
        slot = (key, dt.str)
        buf = self._buffers.get(slot)
        if buf is None or buf.size < size:
            self._buffers[slot] = buf = np.empty(
                max(size, _MIN_ELEMS, 0 if buf is None else 2 * buf.size), dtype=dt
            )
            self.n_grows += 1
        self.n_takes += 1
        return buf[:size].reshape(shape)

    def prewarm(self, hint: dict | None) -> None:
        """Pre-size slots from a ``{key: (n_elements, dtype_str)}`` hint.

        Unknown/malformed hints are ignored — sizing is an optimisation,
        never a correctness input.  Growth events are counted like takes'.
        """
        if not hint:
            return
        for key, spec in hint.items():
            try:
                size, dtype = spec
                dt = np.dtype(dtype)
                size = int(size)
            except (TypeError, ValueError):
                continue
            slot = (str(key), dt.str)
            buf = self._buffers.get(slot)
            if buf is None or buf.size < size:
                self._buffers[slot] = np.empty(max(size, _MIN_ELEMS), dtype=dt)
                self.n_grows += 1

    # ------------------------------------------------------------------ #
    # introspection & lifecycle
    # ------------------------------------------------------------------ #
    def nbytes(self) -> int:
        return sum(buf.nbytes for buf in self._buffers.values())

    def stats(self) -> dict[str, int]:
        return {
            "n_slots": len(self._buffers),
            "nbytes": self.nbytes(),
            "n_takes": self.n_takes,
            "n_grows": self.n_grows,
        }

    def release(self) -> None:
        """Drop every buffer (memory pressure valve; arena stays usable)."""
        self._buffers.clear()

    def __getstate__(self) -> dict:
        # Scratch never crosses a process boundary: a pickled arena (e.g.
        # riding a tester into a worker) arrives empty and regrows there.
        state = dict(self.__dict__)
        state["_buffers"] = {}
        return state

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"KernelArena(n_slots={len(self._buffers)}, nbytes={self.nbytes()}, "
            f"n_takes={self.n_takes}, n_grows={self.n_grows})"
        )
