"""Common CI-test interfaces, result record and instrumentation counters."""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import NamedTuple, Protocol, runtime_checkable

__all__ = ["CITestResult", "CITestCounters", "ConditionalIndependenceTest"]


class CITestResult(NamedTuple):
    """Outcome of one CI test ``I(x, y | s)``.

    ``independent`` is the accept/reject decision at the tester's
    significance level: ``p_value > alpha`` accepts the independence
    hypothesis (paper Sec. III-B).

    A ``NamedTuple`` rather than a frozen dataclass: group-batched learns
    materialise one record per test (tens of thousands per skeleton pass),
    and tuple construction is ~3x cheaper than ``object.__setattr__``-based
    frozen-dataclass init while keeping immutability and field names.
    """

    x: int
    y: int
    s: tuple[int, ...]
    statistic: float
    dof: float
    p_value: float
    independent: bool


@dataclass
class CITestCounters:
    """Work counters accumulated by a tester.

    These drive the cost model and the simulated perf counters (Table IV):
    ``data_accesses`` counts per-sample per-variable reads while filling
    contingency tables (``m * (d + 2)`` per test, the quantity in the
    paper's Sec. IV-D cache analysis); ``table_cells`` counts allocated
    contingency cells; ``log_ops`` counts the G^2 log evaluations (the
    FLOPS analog).

    When the tester pulls tables through a
    :class:`~repro.engine.statscache.SufficientStatsCache`, ``cache_hits``
    and ``cache_misses`` split the tests into those answered without
    touching the data (a hit contributes **zero** data accesses — the whole
    point of the cache) and those that paid the full scan.
    """

    n_tests: int = 0
    data_accesses: int = 0
    table_cells: int = 0
    log_ops: int = 0
    per_depth_tests: dict[int, int] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0

    def record(
        self,
        depth: int,
        m: int,
        cells: int,
        logs: int,
        xy_reused: bool,
        from_cache: bool | None = None,
        z_reused: bool = False,
    ) -> None:
        """Account one executed test.

        ``from_cache`` is ``None`` when no stats cache is attached, ``True``
        for a test whose table came out of the cache, ``False`` for a
        cache-enabled test that had to build its table from the data.
        ``z_reused`` marks a miss whose conditioning-set encoding was
        served from the codes cache — the d conditioning columns were
        never read, so they must not be billed.
        """
        self.n_tests += 1
        if from_cache:
            self.cache_hits += 1
        else:
            if from_cache is not None:
                self.cache_misses += 1
            # A group-evaluated test reuses the already-encoded (x, y)
            # columns, so it touches only the d conditioning columns
            # instead of d + 2; cached encodings and cache hits touch
            # correspondingly fewer.
            cols = (0 if z_reused else depth) + (0 if xy_reused else 2)
            self.data_accesses += m * cols
        self.table_cells += cells
        self.log_ops += logs
        self.per_depth_tests[depth] = self.per_depth_tests.get(depth, 0) + 1

    def reset(self) -> None:
        self.n_tests = 0
        self.data_accesses = 0
        self.table_cells = 0
        self.log_ops = 0
        self.per_depth_tests = {}
        self.cache_hits = 0
        self.cache_misses = 0

    def snapshot(self) -> "CITestCounters":
        out = CITestCounters(
            self.n_tests,
            self.data_accesses,
            self.table_cells,
            self.log_ops,
            dict(self.per_depth_tests),
            self.cache_hits,
            self.cache_misses,
        )
        return out


@runtime_checkable
class ConditionalIndependenceTest(Protocol):
    """Protocol every CI tester implements.

    ``test_group`` evaluates several conditioning sets for the *same*
    endpoint pair and is the hook for the paper's group-evaluation
    optimisation (shared X/Y work across a gs-sized group).
    """

    alpha: float
    counters: CITestCounters

    def test(self, x: int, y: int, s: Sequence[int]) -> CITestResult: ...

    def test_group(
        self, x: int, y: int, sets: Sequence[Sequence[int]]
    ) -> list[CITestResult]: ...
