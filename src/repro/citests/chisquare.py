"""Pearson chi-squared conditional independence test.

The paper mentions the chi-squared test as one of the statistics usable by
constraint-based learners (Sec. II).  Identical table machinery to
:class:`~repro.citests.gsquare.GSquareTest`; only the statistic differs::

    X^2 = sum_{x,y,z} (N_xyz - E_xyz)^2 / E_xyz
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..datasets.dataset import DiscreteDataset
from .base import CITestCounters, CITestResult
from .contingency import encode_columns, n_configurations
from .gsquare import _chi2_sf

__all__ = ["ChiSquareTest"]


class ChiSquareTest:
    """Pearson X^2 CI tester bound to one dataset (same interface as
    :class:`GSquareTest`)."""

    def __init__(
        self,
        dataset: DiscreteDataset,
        alpha: float = 0.05,
        dof_adjust: str = "structural",
        compress_threshold: int = 4,
    ) -> None:
        if not 0 < alpha < 1:
            raise ValueError("alpha must be in (0, 1)")
        if dof_adjust not in ("structural", "slices"):
            raise ValueError("dof_adjust must be 'structural' or 'slices'")
        self.dataset = dataset
        self.alpha = float(alpha)
        self.dof_adjust = dof_adjust
        self.compress_threshold = int(compress_threshold)
        self.counters = CITestCounters()

    def test(self, x: int, y: int, s: Sequence[int]) -> CITestResult:
        return self.test_group(x, y, [s])[0]

    def test_group(self, x: int, y: int, sets: Sequence[Sequence[int]]) -> list[CITestResult]:
        ds = self.dataset
        m = ds.n_samples
        rx, ry = ds.arity(x), ds.arity(y)
        xy_codes = ds.column(x).astype(np.int64) * ry + ds.column(y)
        out: list[CITestResult] = []
        for i, s_raw in enumerate(sets):
            s = tuple(int(v) for v in s_raw)
            rz = [ds.arity(v) for v in s]
            nz_structural = n_configurations(rz)
            if s:
                z_codes, _ = encode_columns(ds.columns(s), rz)
                if nz_structural > self.compress_threshold * max(m, 1):
                    _, z_codes = np.unique(z_codes, return_inverse=True)
                    nz_dense = int(z_codes.max()) + 1 if m else 0
                else:
                    nz_dense = nz_structural
                cell = z_codes * (rx * ry) + xy_codes
            else:
                nz_dense = 1
                cell = xy_codes
            counts = np.bincount(cell, minlength=nz_dense * rx * ry).reshape(nz_dense, rx, ry)

            n_xz = counts.sum(axis=2, dtype=np.float64)
            n_yz = counts.sum(axis=1, dtype=np.float64)
            n_z = n_xz.sum(axis=1)
            nonempty = int(np.count_nonzero(n_z > 0))
            with np.errstate(divide="ignore", invalid="ignore"):
                expected = n_xz[:, :, None] * n_yz[:, None, :] / n_z[:, None, None]
            mask = expected > 0
            diff = counts[mask] - expected[mask]
            stat = float(np.sum(diff * diff / expected[mask]))
            if self.dof_adjust == "structural":
                dof = (rx - 1) * (ry - 1) * float(nz_structural)
            else:
                dof = (rx - 1) * (ry - 1) * float(max(nonempty, 1))
            p = _chi2_sf(stat, dof)
            self.counters.record(
                depth=len(s),
                m=m,
                cells=counts.size,
                logs=int(np.count_nonzero(mask)),
                xy_reused=i > 0,
            )
            out.append(
                CITestResult(
                    x=x, y=y, s=s, statistic=stat, dof=dof, p_value=p, independent=p > self.alpha
                )
            )
        return out
