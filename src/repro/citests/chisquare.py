"""Pearson chi-squared conditional independence test.

The paper mentions the chi-squared test as one of the statistics usable by
constraint-based learners (Sec. II).  Identical table machinery to
:class:`~repro.citests.gsquare.GSquareTest`; only the statistic differs::

    X^2 = sum_{x,y,z} (N_xyz - E_xyz)^2 / E_xyz
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..datasets.dataset import DiscreteDataset
from .base import CITestCounters, CITestResult
from .contingency import ci_counts
from .gsquare import _chi2_sf

__all__ = ["ChiSquareTest"]


class ChiSquareTest:
    """Pearson X^2 CI tester bound to one dataset (same interface as
    :class:`GSquareTest`)."""

    def __init__(
        self,
        dataset: DiscreteDataset,
        alpha: float = 0.05,
        dof_adjust: str = "structural",
        compress_threshold: int = 4,
        stats_cache=None,
    ) -> None:
        if not 0 < alpha < 1:
            raise ValueError("alpha must be in (0, 1)")
        if dof_adjust not in ("structural", "slices"):
            raise ValueError("dof_adjust must be 'structural' or 'slices'")
        self.dataset = dataset
        self.alpha = float(alpha)
        self.dof_adjust = dof_adjust
        self.compress_threshold = int(compress_threshold)
        self.counters = CITestCounters()
        self._builder = None
        if stats_cache is not None:
            from ..engine.statscache import CachedTableBuilder

            self._builder = CachedTableBuilder(
                dataset, stats_cache, compress_threshold=self.compress_threshold
            )

    def test(self, x: int, y: int, s: Sequence[int]) -> CITestResult:
        return self.test_group(x, y, [s])[0]

    def test_group(self, x: int, y: int, sets: Sequence[Sequence[int]]) -> list[CITestResult]:
        ds = self.dataset
        m = ds.n_samples
        rx, ry = ds.arity(x), ds.arity(y)
        # With a stats cache the builder resolves the XY encoding lazily
        # (and memoizes it), so warm paths skip the endpoint-column reads.
        if self._builder is None:
            xy_codes = ds.column(x).astype(np.int64) * ry + ds.column(y)
        else:
            xy_codes = None
        out: list[CITestResult] = []
        for i, s_raw in enumerate(sets):
            s = tuple(int(v) for v in s_raw)
            rz = [ds.arity(v) for v in s]
            from_cache: bool | None = None
            z_reused = False
            xy_reused = i > 0
            if self._builder is not None:
                counts, nz_structural, from_cache, z_reused, xy_cached = self._builder.ci_counts(
                    x, y, s, xy_codes=xy_codes
                )
                xy_reused = xy_reused or xy_cached
            else:
                counts, nz_structural, _dense = ci_counts(
                    ds.column(x),
                    ds.column(y),
                    ds.columns(s),
                    rx,
                    ry,
                    rz,
                    compress_threshold=self.compress_threshold,
                    xy_codes=xy_codes,
                )

            n_xz = counts.sum(axis=2, dtype=np.float64)
            n_yz = counts.sum(axis=1, dtype=np.float64)
            n_z = n_xz.sum(axis=1)
            nonempty = int(np.count_nonzero(n_z > 0))
            with np.errstate(divide="ignore", invalid="ignore"):
                expected = n_xz[:, :, None] * n_yz[:, None, :] / n_z[:, None, None]
            mask = expected > 0
            diff = counts[mask] - expected[mask]
            stat = float(np.sum(diff * diff / expected[mask]))
            if self.dof_adjust == "structural":
                dof = (rx - 1) * (ry - 1) * float(nz_structural)
            else:
                dof = (rx - 1) * (ry - 1) * float(max(nonempty, 1))
            p = _chi2_sf(stat, dof)
            self.counters.record(
                depth=len(s),
                m=m,
                cells=counts.size,
                logs=int(np.count_nonzero(mask)),
                xy_reused=xy_reused,
                from_cache=from_cache,
                z_reused=z_reused,
            )
            out.append(
                CITestResult(
                    x=x, y=y, s=s, statistic=stat, dof=dof, p_value=p, independent=p > self.alpha
                )
            )
        return out
