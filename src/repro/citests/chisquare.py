"""Pearson chi-squared conditional independence test.

The paper mentions the chi-squared test as one of the statistics usable by
constraint-based learners (Sec. II).  Identical table machinery to
:class:`~repro.citests.gsquare.GSquareTest` — shared through
:class:`~repro.citests.tablebase.ContingencyTableTest`, including the
batched group kernel — only the statistic differs::

    X^2 = sum_{x,y,z} (N_xyz - E_xyz)^2 / E_xyz
"""

from __future__ import annotations

import numpy as np

from .tablebase import ContingencyTableTest

__all__ = ["ChiSquareTest"]


def _x2_elementwise(
    counts: np.ndarray, scratch=None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-cell X^2 terms of a ``(..., nz, rx, ry)`` count array.

    Returns ``(terms, mask, n_z)``; ``terms`` sums to the statistic over
    the ``E > 0`` cells marked by ``mask``.  Shared by the looped and the
    fused paths (bit-identical cell for cell).  With ``scratch`` the large
    intermediates come from reused arena buffers — same ufuncs over the
    same operands, so the values match the allocating form bit for bit; the
    returned arrays are only valid until the next scratch-backed call.
    """
    shape = counts.shape
    if scratch is None:
        n_xz = counts.sum(axis=-1, dtype=np.float64)
        n_yz = counts.sum(axis=-2, dtype=np.float64)
        n_z = n_xz.sum(axis=-1)
        observed = counts.astype(np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            expected = n_xz[..., :, None] * n_yz[..., None, :] / n_z[..., None, None]
        mask = expected > 0
        diff = np.where(mask, observed - expected, 0.0)
        denom = np.where(mask, expected, 1.0)
        terms = diff * diff / denom
        return terms, mask, n_z
    n_xz = counts.sum(axis=-1, dtype=np.float64, out=scratch.f64("nxz", shape[:-1]))
    n_yz = counts.sum(
        axis=-2, dtype=np.float64, out=scratch.f64("nyz", shape[:-2] + shape[-1:])
    )
    n_z = n_xz.sum(axis=-1, out=scratch.f64("nz", shape[:-2]))
    # The integer counts serve as ``observed`` directly: the subtraction
    # promotes them to float64 element by element, exactly the values the
    # looped branch's materialised float copy would feed it.
    observed = counts
    expected = np.multiply(
        n_xz[..., :, None], n_yz[..., None, :], out=scratch.f64("exp", shape)
    )
    with np.errstate(divide="ignore", invalid="ignore"):
        expected /= n_z[..., None, None]
    mask = np.greater(expected, 0, out=scratch.bool_("mask", shape))
    terms = scratch.f64("terms", shape)
    terms.fill(0.0)
    np.subtract(observed, expected, out=terms, where=mask)
    np.multiply(terms, terms, out=terms)
    denom = scratch.f64("denom", shape)
    denom.fill(1.0)
    np.copyto(denom, expected, where=mask)
    np.divide(terms, denom, out=terms)
    return terms, mask, n_z


def _x2_from_counts(counts: np.ndarray) -> tuple[float, int, int]:
    """X^2 statistic from an ``(nz, rx, ry)`` table.

    Returns ``(statistic, n_term_evaluations, n_nonempty_z_slices)``.
    """
    terms, mask, n_z = _x2_elementwise(counts)
    n_nonempty = int(np.count_nonzero(n_z > 0))
    n_terms = int(np.count_nonzero(mask))
    stat = float(terms.sum())
    return stat, n_terms, n_nonempty


class ChiSquareTest(ContingencyTableTest):
    """Pearson X^2 CI tester bound to one dataset (same interface as
    :class:`~repro.citests.gsquare.GSquareTest`)."""

    def _stat_from_counts(self, counts: np.ndarray) -> tuple[float, int, int]:
        return _x2_from_counts(counts)

    def _elementwise(
        self, stack: np.ndarray, scratch=None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return _x2_elementwise(stack, scratch)

    def _finalize_stats(self, sums: np.ndarray) -> np.ndarray:
        return np.asarray(sums, dtype=np.float64)
