"""Conditional mutual-information CI test.

The empirical conditional mutual information relates to G^2 by
``G^2 = 2 * m * MI(X; Y | Z)`` (natural log), so the test reuses the G^2
machinery and thresholds either on the chi-squared p-value (default,
statistically calibrated) or on a raw MI threshold (``threshold`` mode,
as used by some gene-network pipelines cited in the paper's related work).
"""

from __future__ import annotations

from collections.abc import Sequence

from ..datasets.dataset import DiscreteDataset
from .base import CITestResult
from .gsquare import GSquareTest

__all__ = ["MutualInformationTest"]


class MutualInformationTest:
    """MI-based CI tester (same interface as :class:`GSquareTest`).

    Parameters
    ----------
    mode:
        ``"pvalue"`` — decide through the G^2 chi-squared p-value;
        ``"threshold"`` — accept independence when the empirical
        MI (in nats) falls below ``mi_threshold``.
    """

    def __init__(
        self,
        dataset: DiscreteDataset,
        alpha: float = 0.05,
        mode: str = "pvalue",
        mi_threshold: float = 0.01,
        dof_adjust: str = "structural",
        stats_cache=None,
        encoded=None,
        batch_groups: bool = True,
        arena=None,
    ) -> None:
        if mode not in ("pvalue", "threshold"):
            raise ValueError("mode must be 'pvalue' or 'threshold'")
        self._g2 = GSquareTest(
            dataset,
            alpha=alpha,
            dof_adjust=dof_adjust,
            stats_cache=stats_cache,
            encoded=encoded,
            batch_groups=batch_groups,
            arena=arena,
        )
        self.dataset = dataset
        self.alpha = float(alpha)
        self.mode = mode
        self.mi_threshold = float(mi_threshold)

    @property
    def counters(self):
        return self._g2.counters

    @property
    def _builder(self):
        """Expose the inner tester's cache builder so cache introspection
        (worker stats probes) sees through the MI wrapper."""
        return self._g2._builder

    def mutual_information(self, x: int, y: int, s: Sequence[int]) -> float:
        """Empirical conditional mutual information in nats."""
        res = self._g2.test(x, y, s)
        return res.statistic / (2.0 * self.dataset.n_samples)

    def test(self, x: int, y: int, s: Sequence[int]) -> CITestResult:
        return self._decide(self._g2.test(x, y, s))

    def test_group(self, x: int, y: int, sets: Sequence[Sequence[int]]) -> list[CITestResult]:
        return [self._decide(r) for r in self._g2.test_group(x, y, sets)]

    def test_groups(self, items) -> list[list[CITestResult]]:
        return [[self._decide(r) for r in group] for group in self._g2.test_groups(items)]

    @property
    def arena(self):
        return self._g2.arena

    def _decide(self, res: CITestResult) -> CITestResult:
        if self.mode == "pvalue":
            return res
        mi = res.statistic / (2.0 * self.dataset.n_samples)
        return CITestResult(
            x=res.x,
            y=res.y,
            s=res.s,
            statistic=mi,
            dof=res.dof,
            p_value=res.p_value,
            independent=mi < self.mi_threshold,
        )
