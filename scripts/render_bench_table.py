#!/usr/bin/env python3
"""Render the README performance table from BENCH_*.json artefacts.

The benchmarks under ``benchmarks/`` persist machine-readable
``benchmarks/results/BENCH_<name>.json`` perf artefacts (see
``benchmarks/results/README.md``).  This script is the *only* writer of
the markdown table between the ``BENCH_TABLE_START``/``END`` markers in
the top-level README — hand-edited numbers drift from the artefacts and
then lie; generated numbers cannot.

Usage::

    python scripts/render_bench_table.py            # rewrite README table
    python scripts/render_bench_table.py --check    # exit 1 when stale (CI)

Unknown artefacts degrade gracefully: a bench without a bespoke
summariser still gets a row with its headline fields, so adding a new
perf bench never requires touching this script first.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
RESULTS = REPO / "benchmarks" / "results"
README = REPO / "README.md"
START = "<!-- BENCH_TABLE_START -->"
END = "<!-- BENCH_TABLE_END -->"


def _fmt(value: float, digits: int = 2) -> str:
    return f"{value:.{digits}f}"


def _row_engine_throughput(doc: dict) -> tuple[str, str]:
    return (
        f"warm vs cold serving ({doc['network']}, {doc['n_requests']} requests)",
        f"{_fmt(doc['speedup'], 0)}× warm speedup, "
        f"{doc['stats_cache_hit_rate']:.0%} stats-cache hit rate",
    )


def _row_kernel_batching(doc: dict) -> tuple[str, str]:
    per_gs = ", ".join(
        f"gs={gs}: {_fmt(doc['group_sizes'][gs]['speedup'])}×"
        for gs in sorted(doc["group_sizes"], key=int)
    )
    return (
        f"batched group kernel vs looped ({doc['network']})",
        per_gs,
    )


def _row_shared_memory(doc: dict) -> tuple[str, str]:
    mem = doc.get("memory_ratio")
    mem_txt = "n/a" if mem is None else f"{mem:.2f}× private memory/worker"
    return (
        f"shm plane vs pickled workers ({doc['network']}, n_jobs={doc['n_jobs']})",
        f"{mem_txt}, {_fmt(doc['start_speedup'])}× pool start",
    )


def _row_server(doc: dict) -> tuple[str, str]:
    return (
        f"multi-dataset server vs per-dataset loop "
        f"({' + '.join(doc['networks'])}, {doc['n_requests']} requests, "
        f"n_jobs={doc['n_jobs']})",
        f"{_fmt(doc['speedup'], 1)}× serving speedup, "
        f"{doc['result_cache_hits']} result-cache hits",
    )


def _row_store(doc: dict) -> tuple[str, str]:
    return (
        f"warm restart vs cold start over a durable store "
        f"({doc['network']}, {doc['n_requests']} requests)",
        f"{_fmt(doc['speedup'], 0)}× restart speedup, "
        f"{doc['store_result_hits']} store hits, "
        f"{doc['warm_skeleton_learns']} skeleton relearns",
    )


def _row_transport(doc: dict) -> tuple[str, str]:
    return (
        f"shared socket server vs per-client engines "
        f"({' + '.join(doc['networks'])}, {doc['n_clients']} clients, "
        f"{doc['n_requests']} requests)",
        f"{_fmt(doc['speedup'], 1)}× serving speedup, "
        f"{_fmt(doc['requests_per_s'], 1)} req/s over TCP",
    )


def _latency_cols(doc: dict) -> str:
    """p50/p95/p99 columns for any artefact carrying a ``latency`` block."""
    lat = doc.get("latency")
    if not isinstance(lat, dict):
        return ""
    return (
        f"p50/p95/p99 {_fmt(lat['p50_ms'], 1)}/"
        f"{_fmt(lat['p95_ms'], 1)}/{_fmt(lat['p99_ms'], 1)} ms"
    )


def _row_workload(doc: dict) -> tuple[str, str]:
    return (
        f"golden-trace replay ({doc['n_requests']} requests, "
        f"{len(doc['per_tenant'])} zipf tenants, threads={doc['threads']})",
        f"{_fmt(doc['requests_per_s'], 0)} req/s, {_latency_cols(doc)}",
    )


def _row_serve_processes(doc: dict) -> tuple[str, str]:
    return (
        f"process plane vs lockstep engines "
        f"({' + '.join(doc['networks'])}, {doc['processes']} workers, "
        f"{doc['n_clients']} clients)",
        f"{_fmt(doc['speedup'], 1)}× serving speedup "
        f"(gate {_fmt(doc['min_speedup_gate'], 1)}× on "
        f"{doc['cpu_count']} cpu), paced replay {_latency_cols(doc)}",
    )


def _row_workload_fairness(doc: dict) -> tuple[str, str]:
    return (
        f"weighted-fair lanes ({doc['n_hot_requests']} hot + "
        f"{doc['n_cold_requests']} cold requests, cold weight "
        f"{_fmt(doc['cold_weight'], 0)}, threads={doc['threads']})",
        f"cold p99 {_fmt(doc['cold_p99_ratio'])}× solo (bound 3×), "
        f"cold under load {_latency_cols(doc)}",
    )


_SUMMARISERS = {
    "engine_throughput": _row_engine_throughput,
    "kernel_batching": _row_kernel_batching,
    "server": _row_server,
    "shared_memory": _row_shared_memory,
    "serve_processes": _row_serve_processes,
    "store": _row_store,
    "transport": _row_transport,
    "workload": _row_workload,
    "workload_fairness": _row_workload_fairness,
}

_GENERIC_FIELDS = ("speedup", "best_speedup", "ops_per_s", "requests_per_s")


def _row_generic(doc: dict) -> tuple[str, str]:
    parts = [f"{k}={_fmt(doc[k])}" for k in _GENERIC_FIELDS if k in doc]
    lat = _latency_cols(doc)
    if lat:
        parts.append(lat)
    return (doc.get("bench", "?"), ", ".join(parts) or "see JSON artefact")


def render_table() -> str:
    docs = []
    for path in sorted(RESULTS.glob("BENCH_*.json")):
        try:
            docs.append(json.loads(path.read_text()))
        except (OSError, json.JSONDecodeError) as exc:
            raise SystemExit(f"unreadable artefact {path}: {exc}") from exc
    if not docs:
        return "_No `BENCH_*.json` artefacts yet — run `python -m pytest benchmarks/`._"
    lines = [
        "| benchmark | headline (this host) |",
        "| --- | --- |",
    ]
    for doc in docs:
        summarise = _SUMMARISERS.get(doc.get("bench"), _row_generic)
        what, headline = summarise(doc)
        lines.append(f"| {what} | {headline} |")
    pythons = sorted({d.get("python", "?") for d in docs})
    machines = sorted({d.get("machine", "?") for d in docs})
    lines.append("")
    lines.append(
        f"_Rendered from {len(docs)} artefact(s); "
        f"Python {'/'.join(pythons)} on {'/'.join(machines)}._"
    )
    return "\n".join(lines)


def splice(readme_text: str, table: str) -> str:
    try:
        head, rest = readme_text.split(START, 1)
        _, tail = rest.split(END, 1)
    except ValueError:
        raise SystemExit(f"README is missing the {START} / {END} markers") from None
    return f"{head}{START}\n{table}\n{END}{tail}"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify the README table matches the artefacts; exit 1 when stale",
    )
    args = parser.parse_args(argv)
    current = README.read_text()
    updated = splice(current, render_table())
    if args.check:
        if updated != current:
            print(
                "README perf table is stale; regenerate with "
                "`python scripts/render_bench_table.py`",
                file=sys.stderr,
            )
            return 1
        print("README perf table is up to date")
        return 0
    if updated != current:
        README.write_text(updated)
        print(f"updated {README.relative_to(REPO)}")
    else:
        print("README perf table already up to date")
    return 0


if __name__ == "__main__":
    sys.exit(main())
