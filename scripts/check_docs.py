#!/usr/bin/env python3
"""Fail on dangling intra-repo documentation references.

Two classes of rot this guards against (both happened in this repo's
history — ``EXPERIMENTS.md`` was cited from ``src/`` for three PRs before
it existed):

* **Markdown links** — every relative ``[text](target)`` in the curated
  markdown set must point at a file or directory that exists (external
  ``http(s)``/``mailto`` targets and pure ``#anchors`` are skipped, and a
  ``path#anchor`` target is checked for the path part only);
* **Doc citations in code** — every ``*.md`` name mentioned in a Python
  source/docstring/comment must exist in the repository (at the repo
  root, under ``docs/``, next to the citing file, or anywhere in the
  tree for unique basenames).

Usage::

    python scripts/check_docs.py        # exit 1 with a report when rot found

Run by the CI docs job next to ``render_bench_table.py --check`` and the
README quickstart snippet.
"""

from __future__ import annotations

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

#: Markdown files whose links must resolve.  SNIPPETS.md is excluded on
#: purpose: it quotes exemplar code from other repositories verbatim.
MARKDOWN_FILES = (
    "README.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "PAPER.md",
    "PAPERS.md",
    "docs",
    "benchmarks/results/README.md",
)

#: Python trees whose ``*.md`` citations must resolve.
PYTHON_TREES = ("src", "tests", "benchmarks", "examples", "scripts")

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_MD_NAME_RE = re.compile(r"\b([\w./-]+\.md)\b", re.IGNORECASE)


def iter_markdown() -> list[pathlib.Path]:
    out: list[pathlib.Path] = []
    for entry in MARKDOWN_FILES:
        path = REPO / entry
        if path.is_dir():
            out.extend(sorted(path.rglob("*.md")))
        elif path.exists():
            out.append(path)
    return out


def check_markdown_links(problems: list[str]) -> None:
    for md in iter_markdown():
        for lineno, line in enumerate(md.read_text().splitlines(), 1):
            for target in _LINK_RE.findall(line):
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                path_part = target.split("#", 1)[0]
                if not path_part:  # pure anchor
                    continue
                resolved = (md.parent / path_part).resolve()
                if not resolved.exists():
                    problems.append(
                        f"{md.relative_to(REPO)}:{lineno}: dangling link -> {target}"
                    )


def _md_exists(name: str, citing_file: pathlib.Path) -> bool:
    candidate = pathlib.PurePosixPath(name)
    if len(candidate.parts) > 1:
        # Explicit relative path: resolve against the repo root, the
        # citing file, or any matching path suffix in the tree.
        if (REPO / candidate).exists() or (citing_file.parent / candidate).exists():
            return True
        return any(
            found.parts[-len(candidate.parts):] == candidate.parts
            for found in REPO.rglob(candidate.name)
        )
    for base in (REPO, REPO / "docs", citing_file.parent):
        if (base / name).exists():
            return True
    # Bare basenames anywhere in the tree still count; the point is that
    # the cited file exists at all.
    return bool(list(REPO.rglob(name)))


def check_python_citations(problems: list[str]) -> None:
    for tree in PYTHON_TREES:
        root = REPO / tree
        if not root.exists():
            continue
        for py in sorted(root.rglob("*.py")):
            for lineno, line in enumerate(py.read_text().splitlines(), 1):
                for name in _MD_NAME_RE.findall(line):
                    if not _md_exists(name, py):
                        problems.append(
                            f"{py.relative_to(REPO)}:{lineno}: cites missing doc {name!r}"
                        )


def main() -> int:
    problems: list[str] = []
    check_markdown_links(problems)
    check_python_citations(problems)
    if problems:
        print(f"{len(problems)} dangling documentation reference(s):", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    n_md = len(iter_markdown())
    print(f"docs OK: links in {n_md} markdown files and *.md citations in "
          f"{'/'.join(PYTHON_TREES)} all resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
